package query

import (
	"math/rand"
	"sort"
	"testing"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/groupby"
)

// groupOracle computes a grouped aggregation by brute force over the
// raw columns: rows qualifying every predicate, grouped by the key
// tuple, emitted ascending.
type groupOracleRow struct {
	key  []int64
	aggs []int64
}

func groupOracle(cols [][]int64, names map[string]int, keys []string, aggs []groupby.Agg, preds []Predicate) []groupOracleRow {
	n := len(cols[0])
	groups := map[string]*groupOracleRow{}
	var out []*groupOracleRow
rows:
	for i := 0; i < n; i++ {
		for _, p := range preds {
			v := cols[names[p.Attr]][i]
			if v < p.Lo || v >= p.Hi {
				continue rows
			}
		}
		key := make([]int64, len(keys))
		raw := ""
		for k, attr := range keys {
			key[k] = cols[names[attr]][i]
			raw += "\x00" + string(rune(key[k]&0xffff)) + string(rune((key[k]>>16)&0xffff))
		}
		g, ok := groups[raw]
		if !ok {
			g = &groupOracleRow{key: key, aggs: make([]int64, len(aggs))}
			for a, s := range aggs {
				switch s.Kind {
				case groupby.KindMin:
					g.aggs[a] = 1 << 62
				case groupby.KindMax:
					g.aggs[a] = -(1 << 62)
				}
			}
			groups[raw] = g
			out = append(out, g)
		}
		for a, s := range aggs {
			switch s.Kind {
			case groupby.KindCount:
				g.aggs[a]++
			case groupby.KindSum:
				g.aggs[a] += cols[names[s.Attr]][i]
			case groupby.KindMin:
				if v := cols[names[s.Attr]][i]; v < g.aggs[a] {
					g.aggs[a] = v
				}
			case groupby.KindMax:
				if v := cols[names[s.Attr]][i]; v > g.aggs[a] {
					g.aggs[a] = v
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i].key {
			if out[i].key[k] != out[j].key[k] {
				return out[i].key[k] < out[j].key[k]
			}
		}
		return false
	})
	rowsOut := make([]groupOracleRow, len(out))
	for i, g := range out {
		rowsOut[i] = *g
	}
	return rowsOut
}

func checkGrouped(t *testing.T, res *groupby.Result, want []groupOracleRow, ctx string) {
	t.Helper()
	if res.Len() != len(want) {
		t.Fatalf("%s: %d groups, want %d (strategy %v)", ctx, res.Len(), len(want), res.Strategy)
	}
	for g, w := range want {
		for k := range w.key {
			if res.Keys[k][g] != w.key[k] {
				t.Fatalf("%s: group %d key %d = %d, want %d (strategy %v)", ctx, g, k, res.Keys[k][g], w.key[k], res.Strategy)
			}
		}
		for a := range w.aggs {
			if res.Aggs[a][g] != w.aggs[a] {
				t.Fatalf("%s: group %d agg %d = %d, want %d (strategy %v)", ctx, g, a, res.Aggs[a][g], w.aggs[a], res.Strategy)
			}
		}
	}
}

// TestGroupedMatchesOracleAllModes is the grouped differential test:
// randomized key sets, fused aggregate lists and predicate sets run
// through every executor mode under every forceable strategy, checked
// against the brute-force oracle.
func TestGroupedMatchesOracleAllModes(t *testing.T) {
	const domain = 1 << 10
	tab, cols := buildTable(4, 5000, domain, 29)
	execs := allModeExecutors(t, tab)
	attrNames := []string{"a", "b", "c", "d"}
	for label, exec := range execs {
		t.Run(label, func(t *testing.T) {
			defer exec.Close()
			r := New(tab, exec, 2)
			rng := rand.New(rand.NewSource(31))
			for q := 0; q < 25; q++ {
				perm := rng.Perm(4)
				nk := 1 + rng.Intn(2)
				keys := make([]string, nk)
				for i := range keys {
					keys[i] = attrNames[perm[i]]
				}
				aggAttr := attrNames[perm[nk%4]]
				aggs := []groupby.Agg{groupby.Count(), groupby.Sum(aggAttr), groupby.Min(aggAttr), groupby.Max(aggAttr)}
				np := rng.Intn(3)
				preds := make([]Predicate, np)
				for i := range preds {
					lo := rng.Int63n(domain)
					preds[i] = Predicate{Attr: attrNames[rng.Intn(4)], Lo: lo, Hi: lo + rng.Int63n(domain-lo) + 1}
				}
				// Mirror the runner's duplicate-attribute intersection for
				// the oracle.
				merged := mergePreds(preds)
				want := groupOracle(cols, names, keys, aggs, merged)

				for _, strat := range []groupby.Strategy{groupby.StrategyAuto, groupby.StrategyDense, groupby.StrategyHash, groupby.StrategySort} {
					r.SetGroupStrategy(strat)
					res, err := r.Grouped(keys, aggs, preds)
					if err != nil {
						t.Fatal(err)
					}
					checkGrouped(t, res, want, label)
				}
				r.SetGroupStrategy(groupby.StrategyAuto)
			}
		})
	}
}

// mergePreds intersects duplicate attributes (the planner's
// normalization) so the oracle sees the same conjunction.
func mergePreds(preds []Predicate) []Predicate {
	var out []Predicate
	for _, p := range preds {
		merged := false
		for i := range out {
			if out[i].Attr == p.Attr {
				if p.Lo > out[i].Lo {
					out[i].Lo = p.Lo
				}
				if p.Hi < out[i].Hi {
					out[i].Hi = p.Hi
				}
				merged = true
			}
		}
		if !merged {
			out = append(out, p)
		}
	}
	return out
}

// TestGroupedSortStrategyRuns pins the sort strategy on an executor with
// a key-ordered access path and verifies it actually executes (and
// agrees with the oracle); on an executor without one it must fall back
// to hash, not fail.
func TestGroupedSortStrategyRuns(t *testing.T) {
	const domain = 1 << 10
	tab, cols := buildTable(2, 4000, domain, 37)
	off := engine.NewOfflineExecutor(tab, 2)
	r := New(tab, off, 2)
	r.SetGroupStrategy(groupby.StrategySort)
	aggs := []groupby.Agg{groupby.Count(), groupby.Sum("b")}
	preds := []Predicate{{Attr: "b", Lo: 0, Hi: domain / 2}}
	res, err := r.Grouped([]string{"a"}, aggs, preds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != groupby.StrategySort {
		t.Fatalf("offline forced-sort strategy = %v, want sort", res.Strategy)
	}
	checkGrouped(t, res, groupOracle(cols, names, []string{"a"}, aggs, preds), "offline")

	// Adaptive: no cracker on "a" yet → sort unavailable → hash fallback.
	ad := engine.NewAdaptiveExecutor(tab, cracking.Config{WithRows: true}, "")
	ra := New(tab, ad, 2)
	ra.SetGroupStrategy(groupby.StrategySort)
	res2, err := ra.Grouped([]string{"a"}, aggs, preds)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Strategy == groupby.StrategySort {
		t.Fatal("sort strategy ran without a key-ordered access path")
	}
	checkGrouped(t, res2, groupOracle(cols, names, []string{"a"}, aggs, preds), "adaptive-fallback")

	// After a select drives on "a", the cracker exists and forced sort
	// walks it.
	if _, err := ra.Count([]Predicate{{Attr: "a", Lo: 0, Hi: domain / 3}}); err != nil {
		t.Fatal(err)
	}
	res3, err := ra.Grouped([]string{"a"}, aggs, preds)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Strategy != groupby.StrategySort {
		t.Fatalf("adaptive forced-sort strategy = %v, want sort", res3.Strategy)
	}
	checkGrouped(t, res3, groupOracle(cols, names, []string{"a"}, aggs, preds), "adaptive-sort")
}

// TestGroupedNoPredicates groups the whole relation.
func TestGroupedNoPredicates(t *testing.T) {
	tab, cols := buildTable(2, 3000, 64, 41)
	r := New(tab, engine.NewScanExecutor(tab, 2), 2)
	aggs := []groupby.Agg{groupby.Count(), groupby.Sum("b")}
	res, err := r.Grouped([]string{"a"}, aggs, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGrouped(t, res, groupOracle(cols, names, []string{"a"}, aggs, nil), "no-preds")
}

// TestGroupedErrors covers the validation paths.
func TestGroupedErrors(t *testing.T) {
	tab, _ := buildTable(2, 100, 64, 43)
	r := New(tab, engine.NewScanExecutor(tab, 1), 1)
	if _, err := r.Grouped(nil, []groupby.Agg{groupby.Count()}, nil); err == nil {
		t.Error("no keys did not error")
	}
	if _, err := r.Grouped([]string{"a"}, nil, nil); err == nil {
		t.Error("no aggregates did not error")
	}
	if _, err := r.Grouped([]string{"zz"}, []groupby.Agg{groupby.Count()}, nil); err == nil {
		t.Error("unknown key did not error")
	}
	if _, err := r.Grouped([]string{"a", "a"}, []groupby.Agg{groupby.Count()}, nil); err == nil {
		t.Error("duplicate key did not error")
	}
	if _, err := r.Grouped([]string{"a"}, []groupby.Agg{groupby.Sum("zz")}, nil); err == nil {
		t.Error("unknown aggregate attribute did not error")
	}
	// Contradictory predicates: empty result with the right shape.
	res, err := r.Grouped([]string{"a"}, []groupby.Agg{groupby.Count()}, []Predicate{
		{Attr: "b", Lo: 10, Hi: 20}, {Attr: "b", Lo: 30, Hi: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 || len(res.Keys) != 1 || len(res.Aggs) != 1 {
		t.Fatalf("contradictory grouped query = %d groups, shape %d/%d", res.Len(), len(res.Keys), len(res.Aggs))
	}
}

// TestMinMaxMatchesOracleAllModes covers the Min/Max terminal
// aggregates over conjunctions, both representations, every mode.
func TestMinMaxMatchesOracleAllModes(t *testing.T) {
	const domain = 1 << 12
	tab, cols := buildTable(3, 5000, domain, 47)
	execs := allModeExecutors(t, tab)
	attrNames := []string{"a", "b", "c"}
	for label, exec := range execs {
		t.Run(label, func(t *testing.T) {
			defer exec.Close()
			r := New(tab, exec, 2)
			rng := rand.New(rand.NewSource(53))
			for q := 0; q < 30; q++ {
				k := 1 + rng.Intn(3)
				perm := rng.Perm(3)
				preds := make([]Predicate, k)
				for i := 0; i < k; i++ {
					lo := rng.Int63n(domain)
					preds[i] = Predicate{Attr: attrNames[perm[i]], Lo: lo, Hi: lo + rng.Int63n(domain-lo) + 1}
				}
				target := attrNames[rng.Intn(3)]
				sel := oracle(cols, names, preds)
				var wantMn, wantMx int64
				wantOk := false
				for _, row := range sel {
					v := cols[names[target]][row]
					if !wantOk || v < wantMn {
						wantMn = v
					}
					if !wantOk || v > wantMx {
						wantMx = v
					}
					wantOk = true
				}
				for _, pol := range []RepPolicy{RepAuto, RepPosList, RepBitmap} {
					r.SetRepPolicy(pol)
					mn, mx, ok, err := r.MinMax(target, preds)
					if err != nil {
						t.Fatal(err)
					}
					if ok != wantOk || (ok && (mn != wantMn || mx != wantMx)) {
						t.Fatalf("query %d policy %d: MinMax(%s) = (%d,%d,%v), want (%d,%d,%v)",
							q, pol, target, mn, mx, ok, wantMn, wantMx, wantOk)
					}
				}
				r.SetRepPolicy(RepAuto)
			}
		})
	}
}

// TestRepeatedAttributeIntersection is the property test of the
// duplicate-conjunct normalization: any set of overlapping, disjoint or
// inverted ranges on one attribute must behave exactly like the single
// merged predicate — across every executor mode and both selection-
// vector representations, for every query form.
func TestRepeatedAttributeIntersection(t *testing.T) {
	const domain = 1 << 12
	tab, cols := buildTable(2, 4000, domain, 59)
	execs := allModeExecutors(t, tab)
	for label, exec := range execs {
		t.Run(label, func(t *testing.T) {
			defer exec.Close()
			r := New(tab, exec, 2)
			rng := rand.New(rand.NewSource(61))
			for trial := 0; trial < 40; trial++ {
				nr := 2 + rng.Intn(3)
				preds := make([]Predicate, 0, nr+1)
				mLo, mHi := int64(0), int64(domain)
				for i := 0; i < nr; i++ {
					var lo, hi int64
					switch rng.Intn(4) {
					case 0: // wide overlapping
						lo, hi = rng.Int63n(domain/4), domain/2+rng.Int63n(domain/2)
					case 1: // narrow
						lo = rng.Int63n(domain)
						hi = lo + rng.Int63n(domain/8) + 1
					case 2: // potentially disjoint from earlier ranges
						lo = rng.Int63n(domain)
						hi = lo + rng.Int63n(domain/2)
					default: // inverted (empty)
						hi = rng.Int63n(domain)
						lo = hi + 1 + rng.Int63n(16)
					}
					preds = append(preds, Predicate{Attr: "a", Lo: lo, Hi: hi})
					if lo > mLo {
						mLo = lo
					}
					if hi < mHi {
						mHi = hi
					}
				}
				// Sometimes add a second-attribute conjunct so both the
				// single- and multi-predicate paths are exercised.
				var extra []Predicate
				if rng.Intn(2) == 0 {
					lo := rng.Int63n(domain / 2)
					extra = []Predicate{{Attr: "b", Lo: lo, Hi: lo + rng.Int63n(domain-lo) + 1}}
					preds = append(preds, extra...)
				}
				merged := append([]Predicate{{Attr: "a", Lo: mLo, Hi: mHi}}, extra...)
				want := oracle(cols, names, merged)

				for _, pol := range []RepPolicy{RepPosList, RepBitmap} {
					r.SetRepPolicy(pol)
					n, err := r.Count(preds)
					if err != nil {
						t.Fatal(err)
					}
					nm, err := r.Count(merged)
					if err != nil {
						t.Fatal(err)
					}
					if n != len(want) || nm != len(want) {
						t.Fatalf("trial %d policy %d: count repeated=%d merged=%d, want %d (%v)", trial, pol, n, nm, len(want), preds)
					}
					rows, err := r.Rows(preds)
					if err != nil {
						t.Fatal(err)
					}
					if len(rows) != len(want) {
						t.Fatalf("trial %d policy %d: %d rows, want %d", trial, pol, len(rows), len(want))
					}
					for i := range rows {
						if rows[i] != want[i] {
							t.Fatalf("trial %d policy %d: rows[%d] = %d, want %d", trial, pol, i, rows[i], want[i])
						}
					}
					var wantSum int64
					for _, row := range want {
						wantSum += cols[1][row]
					}
					s, err := r.Sum("b", preds)
					if err != nil {
						t.Fatal(err)
					}
					if s != wantSum {
						t.Fatalf("trial %d policy %d: sum = %d, want %d", trial, pol, s, wantSum)
					}
				}
				r.SetRepPolicy(RepAuto)
			}
		})
	}
}

// TestSteadyStateGroupedAllocationFree: the dense grouped path through
// pooled scratch and a reused result allocates nothing per query — the
// tentpole's allocation bar, matching the conjunctive count/sum one.
func TestSteadyStateGroupedAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts are meaningless")
	}
	const domain = 1 << 16
	tab, _ := buildTable(3, 1<<15, domain, 67)
	// Key domain small: overwrite column a with group ids.
	keyVals := tab.Column("a").Values()
	for i := range keyVals {
		keyVals[i] = keyVals[i] % 61
	}
	r := New(tab, engine.NewScanExecutor(tab, 1), 1)
	keys := []string{"a"}
	aggs := []groupby.Agg{groupby.Count(), groupby.Sum("c"), groupby.Min("c"), groupby.Max("c")}
	preds := []Predicate{
		{Attr: "b", Lo: 0, Hi: domain / 2},
		{Attr: "c", Lo: domain / 8, Hi: domain},
	}
	var res groupby.Result
	if err := r.GroupedInto(&res, keys, aggs, preds); err != nil {
		t.Fatal(err)
	}
	if res.Strategy != groupby.StrategyDense {
		t.Fatalf("steady-state test expects the dense strategy, got %v", res.Strategy)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := r.GroupedInto(&res, keys, aggs, preds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("steady-state grouped query allocates %.2f times per query, want 0", allocs)
	}
	// The no-predicate grouped form shares the pooled path.
	if err := r.GroupedInto(&res, keys, aggs, nil); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if err := r.GroupedInto(&res, keys, aggs, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("steady-state whole-relation grouped query allocates %.2f times per query, want 0", allocs)
	}
}

// colView builds a plain view for kernel-level checks.
func colView(vals []int64) column.View { return column.View{Base: vals} }

// TestMinMaxKernels sanity-checks the new column kernels directly.
func TestMinMaxKernels(t *testing.T) {
	vals := []int64{5, -3, 8, 0, 7}
	sel := column.PosList{1, 2, 4}
	mn, mx, n := column.MinMaxRows(vals, sel)
	if mn != -3 || mx != 8 || n != 3 {
		t.Fatalf("MinMaxRows = (%d,%d,%d)", mn, mx, n)
	}
	bm := column.NewBitmap(len(vals))
	for _, p := range sel {
		bm.Set(p)
	}
	mn, mx, n = column.MinMaxBitmap(vals, bm)
	if mn != -3 || mx != 8 || n != 3 {
		t.Fatalf("MinMaxBitmap = (%d,%d,%d)", mn, mx, n)
	}
	w := colView(vals)
	if mn, mx, n = w.MinMaxRows(sel); mn != -3 || mx != 8 || n != 3 {
		t.Fatalf("View.MinMaxRows = (%d,%d,%d)", mn, mx, n)
	}
	if mn, mx, n = w.MinMaxBitmap(bm); mn != -3 || mx != 8 || n != 3 {
		t.Fatalf("View.MinMaxBitmap = (%d,%d,%d)", mn, mx, n)
	}
}
