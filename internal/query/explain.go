// Explain: run a query with a caller-owned trace attached, then fill
// the per-conjunct standalone cardinalities with an O(N) oracle probe
// so the trace reports estimated versus actual selectivity. Explain is
// a diagnostic path — it allocates freely and is never pooled.

package query

import (
	"time"

	"holistic/internal/column"
	"holistic/internal/groupby"
	"holistic/internal/obs"
)

// explainRun executes body with a fresh caller-owned trace wired into
// the pooled scratch, mirroring the begin/finish bracket without the
// sink hand-off: the returned trace belongs to the caller and is never
// recycled into the trace pool.
func (r *Runner) explainRun(kind string, op obs.Op, body func(sc *scratch) (int64, error)) (*obs.QueryTrace, error) {
	tr := obs.NewTrace()
	sc := r.getScratch()
	if r.met != nil {
		sc.seq = r.met.NextSeq()
	}
	sc.trace = tr
	tr.Seq = sc.seq
	tr.Kind = kind
	tr.Mode = r.exec.Label()
	tr.Rows = r.table.Rows()
	start := time.Now()
	result, err := body(sc)
	elapsed := time.Since(start).Nanoseconds()
	if r.met != nil {
		r.met.RecordOp(op, elapsed)
	}
	tr.Result = result
	tr.TotalNanos = elapsed
	if err != nil {
		tr.Err = err.Error()
	}
	sc.trace = nil
	r.putScratch(sc)
	if err == nil {
		r.fillActual(tr, "")
	}
	return tr, err
}

// fillActual measures the standalone cardinality of every conjunct
// recorded under side ("" for single-relation queries) by probing the
// attribute's update-aware view over the whole relation — the oracle
// the estimated selectivities are compared against. O(N) per conjunct;
// Explain-only.
func (r *Runner) fillActual(tr *obs.QueryTrace, side string) {
	for i := range tr.Conjuncts {
		c := &tr.Conjuncts[i]
		if c.Side != side {
			continue
		}
		w, err := r.view(c.Attr)
		if err != nil {
			continue
		}
		var n int64
		ext := w.Extent()
		for p := 0; p < ext; p++ {
			if v, ok := w.At(column.Pos(p)); ok && v >= c.Lo && v < c.Hi {
				n++
			}
		}
		c.ActualRows = n
	}
}

// ExplainCount runs Count with tracing forced on and returns the
// completed trace alongside the count.
func (r *Runner) ExplainCount(preds []Predicate) (*obs.QueryTrace, int, error) {
	var n int
	tr, err := r.explainRun(obs.KindCount, obs.OpCount, func(sc *scratch) (int64, error) {
		var e error
		n, e = r.countSC(sc, preds)
		return int64(n), e
	})
	return tr, n, err
}

// ExplainSum runs Sum with tracing forced on.
func (r *Runner) ExplainSum(attr string, preds []Predicate) (*obs.QueryTrace, int64, error) {
	if r.table.Column(attr) == nil {
		return nil, 0, errf("query: unknown attribute %q", attr)
	}
	var s int64
	tr, err := r.explainRun(obs.KindSum, obs.OpSum, func(sc *scratch) (int64, error) {
		var e error
		s, e = r.sumSC(sc, attr, preds)
		return s, e
	})
	return tr, s, err
}

// ExplainGrouped runs a grouped aggregation into res with tracing
// forced on, reporting the grouping strategy chosen and why.
func (r *Runner) ExplainGrouped(res *groupby.Result, keys []string, aggs []groupby.Agg, preds []Predicate) (*obs.QueryTrace, error) {
	if err := r.checkGrouped(keys, aggs); err != nil {
		return nil, err
	}
	return r.explainRun(obs.KindGrouped, obs.OpGrouped, func(sc *scratch) (int64, error) {
		if err := r.groupedSC(sc, res, keys, aggs, preds); err != nil {
			return 0, err
		}
		return int64(res.Len()), nil
	})
}

// Explain runs the join as Count with tracing forced on and returns
// the completed trace: conjuncts carry their side, and the strategy
// fields report hash versus index-clustered merge and why.
func (j *Join) Explain() (*obs.QueryTrace, int64, error) {
	tr := obs.NewTrace()
	j.SetTrace(tr)
	defer j.SetTrace(nil)
	n, err := j.Count()
	if err == nil {
		j.left.fillActual(tr, "left")
		j.right.fillActual(tr, "right")
	}
	return tr, n, err
}
