package query

import (
	"math/rand"
	"testing"
	"time"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/holistic"
)

// buildTable returns a table of `attrs` uniform columns over [0, domain)
// plus the raw slices for oracle checks.
func buildTable(attrs, rows int, domain int64, seed int64) (*engine.Table, [][]int64) {
	t := engine.NewTable("R")
	cols := make([][]int64, attrs)
	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c", "d"}
	for i := 0; i < attrs; i++ {
		vals := make([]int64, rows)
		for j := range vals {
			vals[j] = rng.Int63n(domain)
		}
		cols[i] = vals
		t.MustAddColumn(column.New(names[i], vals))
	}
	return t, cols
}

// oracle computes the qualifying row set by brute force.
func oracle(cols [][]int64, names map[string]int, preds []Predicate) []uint32 {
	if len(preds) == 0 {
		return nil
	}
	n := len(cols[0])
	var out []uint32
rows:
	for i := 0; i < n; i++ {
		for _, p := range preds {
			v := cols[names[p.Attr]][i]
			if v < p.Lo || v >= p.Hi {
				continue rows
			}
		}
		out = append(out, uint32(i))
	}
	return out
}

var names = map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}

func TestPlanOrdersBySelectivity(t *testing.T) {
	tab, _ := buildTable(3, 5000, 1000, 1)
	off := engine.NewOfflineExecutor(tab, 1)
	off.PrepareAll()
	r := New(tab, off, 2)

	preds := []Predicate{
		{Attr: "a", Lo: 0, Hi: 900}, // ~90%
		{Attr: "b", Lo: 0, Hi: 10},  // ~1%
		{Attr: "c", Lo: 0, Hi: 300}, // ~30%
	}
	ordered, ests := r.Plan(preds)
	if ordered[0].Attr != "b" || ordered[1].Attr != "c" || ordered[2].Attr != "a" {
		t.Fatalf("plan order = %v (estimates %v), want b, c, a", ordered, ests)
	}
	if ests[0] > ests[1] || ests[1] > ests[2] {
		t.Fatalf("estimates not ascending: %v", ests)
	}
}

func TestPlanUniformFallback(t *testing.T) {
	tab, _ := buildTable(2, 2000, 1<<20, 2)
	r := New(tab, engine.NewScanExecutor(tab, 2), 2)
	ordered, _ := r.Plan([]Predicate{
		{Attr: "a", Lo: 0, Hi: 1 << 19}, // half the domain
		{Attr: "b", Lo: 0, Hi: 1 << 10}, // a sliver
	})
	if ordered[0].Attr != "b" {
		t.Fatalf("uniform fallback drove on %q, want b", ordered[0].Attr)
	}
}

func TestNormalizeIntersectsDuplicates(t *testing.T) {
	tab, cols := buildTable(2, 3000, 1000, 3)
	r := New(tab, engine.NewScanExecutor(tab, 2), 2)
	got, err := r.Count([]Predicate{
		{Attr: "a", Lo: 100, Hi: 700},
		{Attr: "a", Lo: 300, Hi: 900},
		{Attr: "b", Lo: 0, Hi: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(oracle(cols, names, []Predicate{{Attr: "a", Lo: 300, Hi: 700}, {Attr: "b", Lo: 0, Hi: 500}}))
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	// Contradictory duplicates: empty result, no error.
	if n, err := r.Count([]Predicate{{Attr: "a", Lo: 0, Hi: 100}, {Attr: "a", Lo: 500, Hi: 600}}); err != nil || n != 0 {
		t.Fatalf("contradictory conjuncts = (%d, %v), want (0, nil)", n, err)
	}
}

func TestQueryErrors(t *testing.T) {
	tab, _ := buildTable(1, 100, 1000, 4)
	r := New(tab, engine.NewScanExecutor(tab, 1), 1)
	if _, err := r.Count(nil); err != ErrNoPredicates {
		t.Errorf("Count() err = %v, want ErrNoPredicates", err)
	}
	if _, err := r.Count([]Predicate{{Attr: "zz", Lo: 0, Hi: 1}}); err == nil {
		t.Error("unknown predicate attribute did not error")
	}
	if _, err := r.Sum("zz", []Predicate{{Attr: "a", Lo: 0, Hi: 1}}); err == nil {
		t.Error("unknown sum attribute did not error")
	}
	if _, err := r.Values(nil, []Predicate{{Attr: "a", Lo: 0, Hi: 1}}); err == nil {
		t.Error("Values without attributes did not error")
	}
}

// TestConjunctionMatchesOracle runs randomized conjunctions through the
// scan and adaptive access paths and checks all four query forms.
func TestConjunctionMatchesOracle(t *testing.T) {
	const domain = 1 << 12
	tab, cols := buildTable(4, 6000, domain, 5)
	execs := map[string]engine.Executor{
		"scan":     engine.NewScanExecutor(tab, 2),
		"adaptive": engine.NewAdaptiveExecutor(tab, cracking.Config{WithRows: true}, ""),
	}
	attrNames := []string{"a", "b", "c", "d"}
	for label, exec := range execs {
		t.Run(label, func(t *testing.T) {
			r := New(tab, exec, 2)
			rng := rand.New(rand.NewSource(7))
			for q := 0; q < 40; q++ {
				k := 2 + rng.Intn(3)
				perm := rng.Perm(4)
				preds := make([]Predicate, k)
				for i := 0; i < k; i++ {
					lo := rng.Int63n(domain)
					preds[i] = Predicate{Attr: attrNames[perm[i]], Lo: lo, Hi: lo + rng.Int63n(domain-lo) + 1}
				}
				want := oracle(cols, names, preds)

				n, err := r.Count(preds)
				if err != nil {
					t.Fatal(err)
				}
				if n != len(want) {
					t.Fatalf("query %d: count = %d, want %d (%v)", q, n, len(want), preds)
				}

				rows, err := r.Rows(preds)
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != len(want) {
					t.Fatalf("query %d: %d rows, want %d", q, len(rows), len(want))
				}
				for i := range rows {
					if rows[i] != want[i] {
						t.Fatalf("query %d: rows[%d] = %d, want %d", q, i, rows[i], want[i])
					}
				}

				sumAttr := attrNames[rng.Intn(4)]
				sum, err := r.Sum(sumAttr, preds)
				if err != nil {
					t.Fatal(err)
				}
				var wantSum int64
				for _, row := range want {
					wantSum += cols[names[sumAttr]][row]
				}
				if sum != wantSum {
					t.Fatalf("query %d: sum(%s) = %d, want %d", q, sumAttr, sum, wantSum)
				}

				vals, err := r.Values([]string{"a", sumAttr}, preds)
				if err != nil {
					t.Fatal(err)
				}
				if len(vals) != 2 || len(vals[0]) != len(want) {
					t.Fatalf("query %d: Values shape %d/%d, want 2/%d", q, len(vals), len(vals[0]), len(want))
				}
				for i, row := range want {
					if vals[0][i] != cols[0][row] || vals[1][i] != cols[names[sumAttr]][row] {
						t.Fatalf("query %d: Values[%d] mismatch", q, i)
					}
				}
			}
		})
	}
}

// TestSinglePredicateFastPaths: one conjunct behaves exactly like the
// executor's native forms.
func TestSinglePredicateFastPaths(t *testing.T) {
	tab, cols := buildTable(2, 4000, 1000, 6)
	r := New(tab, engine.NewScanExecutor(tab, 2), 2)
	preds := []Predicate{{Attr: "b", Lo: 200, Hi: 600}}
	want := oracle(cols, names, preds)
	if n, err := r.Count(preds); err != nil || n != len(want) {
		t.Fatalf("Count = (%d, %v), want %d", n, err, len(want))
	}
	var wantSum int64
	for _, row := range want {
		wantSum += cols[1][row]
	}
	if s, err := r.Sum("b", preds); err != nil || s != wantSum {
		t.Fatalf("Sum = (%d, %v), want %d", s, err, wantSum)
	}
	rows, err := r.Rows(preds)
	if err != nil || len(rows) != len(want) {
		t.Fatalf("Rows = (%d rows, %v), want %d", len(rows), err, len(want))
	}
}

// allModeExecutors builds one executor per mode of the paper over the
// same table; cracking configurations carry rowids so the row and
// bitmap select forms are answerable.
func allModeExecutors(t *testing.T, tab *engine.Table) map[string]engine.Executor {
	t.Helper()
	return map[string]engine.Executor{
		"scan":       engine.NewScanExecutor(tab, 2),
		"offline":    engine.NewOfflineExecutor(tab, 2),
		"online":     engine.NewOnlineExecutor(tab, 2, 10),
		"adaptive":   engine.NewAdaptiveExecutor(tab, cracking.Config{WithRows: true}, ""),
		"stochastic": engine.NewAdaptiveExecutor(tab, cracking.Config{Stochastic: true, WithRows: true, Seed: 5}, "stochastic"),
		"ccgi":       engine.NewCCGIExecutor(tab, 2, 8, cracking.Config{WithRows: true}),
		"holistic": engine.NewHolisticExecutor(tab, engine.HolisticConfig{
			Cracking: cracking.Config{WithRows: true},
			Daemon:   holistic.Config{Interval: time.Millisecond, Refinements: 4, Seed: 3},
			L1Values: 256,
			Contexts: 2,
		}),
	}
}

// TestRepresentationsAgreeAllModes is the tentpole differential test:
// for every executor mode, the bitmap and position-list pipelines must
// return identical results for every query form, checked against the
// brute-force oracle.
func TestRepresentationsAgreeAllModes(t *testing.T) {
	const domain = 1 << 12
	tab, cols := buildTable(4, 6000, domain, 15)
	execs := allModeExecutors(t, tab)
	attrNames := []string{"a", "b", "c", "d"}
	for label, exec := range execs {
		t.Run(label, func(t *testing.T) {
			defer exec.Close()
			r := New(tab, exec, 2)
			rng := rand.New(rand.NewSource(17))
			for q := 0; q < 30; q++ {
				k := 2 + rng.Intn(3)
				perm := rng.Perm(4)
				preds := make([]Predicate, k)
				for i := 0; i < k; i++ {
					lo := rng.Int63n(domain)
					preds[i] = Predicate{Attr: attrNames[perm[i]], Lo: lo, Hi: lo + rng.Int63n(domain-lo) + 1}
				}
				want := oracle(cols, names, preds)
				sumAttr := attrNames[rng.Intn(4)]
				var wantSum int64
				for _, row := range want {
					wantSum += cols[names[sumAttr]][row]
				}

				for _, policy := range []RepPolicy{RepPosList, RepBitmap} {
					r.SetRepPolicy(policy)
					n, err := r.Count(preds)
					if err != nil {
						t.Fatal(err)
					}
					if n != len(want) {
						t.Fatalf("query %d policy %d: count = %d, want %d (%v)", q, policy, n, len(want), preds)
					}
					rows, err := r.Rows(preds)
					if err != nil {
						t.Fatal(err)
					}
					if len(rows) != len(want) {
						t.Fatalf("query %d policy %d: %d rows, want %d", q, policy, len(rows), len(want))
					}
					for i := range rows {
						if rows[i] != want[i] {
							t.Fatalf("query %d policy %d: rows[%d] = %d, want %d", q, policy, i, rows[i], want[i])
						}
					}
					sum, err := r.Sum(sumAttr, preds)
					if err != nil {
						t.Fatal(err)
					}
					if sum != wantSum {
						t.Fatalf("query %d policy %d: sum(%s) = %d, want %d", q, policy, sumAttr, sum, wantSum)
					}
					vals, err := r.Values([]string{sumAttr}, preds)
					if err != nil {
						t.Fatal(err)
					}
					if len(vals[0]) != len(want) {
						t.Fatalf("query %d policy %d: Values len %d, want %d", q, policy, len(vals[0]), len(want))
					}
					for i, row := range want {
						if vals[0][i] != cols[names[sumAttr]][row] {
							t.Fatalf("query %d policy %d: Values[%d] mismatch", q, policy, i)
						}
					}
				}
				r.SetRepPolicy(RepAuto)
				if n, err := r.Count(preds); err != nil || n != len(want) {
					t.Fatalf("query %d auto: count = (%d, %v), want %d", q, n, err, len(want))
				}
			}
		})
	}
}

// TestChooseBitmapCrossover: the Auto policy picks the representation
// from the driving conjunct's estimated selectivity against the
// crossover, and respects the forced policies.
func TestChooseBitmapCrossover(t *testing.T) {
	const domain = 1 << 20
	tab, _ := buildTable(2, 10_000, domain, 19)
	r := New(tab, engine.NewScanExecutor(tab, 2), 2)
	sc := r.getScratch()
	defer r.putScratch(sc)

	dense := []Predicate{
		{Attr: "a", Lo: 0, Hi: domain / 2}, // ~50% drives
		{Attr: "b", Lo: 0, Hi: domain - 1},
	}
	sparse := []Predicate{
		{Attr: "a", Lo: 0, Hi: domain / 1024}, // ~0.1% drives
		{Attr: "b", Lo: 0, Hi: domain - 1},
	}
	single := []Predicate{{Attr: "a", Lo: 0, Hi: domain / 2}}

	if empty, err := r.planScratch(sc, dense); err != nil || empty {
		t.Fatal(err)
	}
	if ok, _ := r.chooseBitmap(sc); !ok {
		t.Error("dense drive did not choose bitmap")
	}
	r.SetRepPolicy(RepPosList)
	if ok, _ := r.chooseBitmap(sc); ok {
		t.Error("RepPosList still chose bitmap")
	}
	r.SetRepPolicy(RepAuto)

	if empty, err := r.planScratch(sc, sparse); err != nil || empty {
		t.Fatal(err)
	}
	if ok, _ := r.chooseBitmap(sc); ok {
		t.Error("sparse drive chose bitmap")
	}
	r.SetRepPolicy(RepBitmap)
	if ok, _ := r.chooseBitmap(sc); !ok {
		t.Error("RepBitmap did not choose bitmap")
	}
	r.SetRepPolicy(RepAuto)
	r.SetBitmapCrossover(0) // crossover 0: everything is dense enough
	if ok, _ := r.chooseBitmap(sc); !ok {
		t.Error("crossover 0 did not choose bitmap")
	}
	r.SetBitmapCrossover(DefaultBitmapCrossover)

	if empty, err := r.planScratch(sc, single); err != nil || empty {
		t.Fatal(err)
	}
	if ok, _ := r.chooseBitmap(sc); ok {
		t.Error("single conjunct chose bitmap")
	}
}

// TestSteadyStateCountSumAllocationFree: with sequential kernels the
// bitmap-path Count and Sum allocate nothing per query once the pooled
// scratch is warm — the tentpole's acceptance criterion.
func TestSteadyStateCountSumAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts are meaningless")
	}
	const domain = 1 << 16
	tab, _ := buildTable(3, 1<<15, domain, 23)
	r := New(tab, engine.NewScanExecutor(tab, 1), 1)
	preds := []Predicate{
		{Attr: "a", Lo: 0, Hi: domain / 2},
		{Attr: "b", Lo: domain / 4, Hi: domain},
		{Attr: "c", Lo: 0, Hi: 3 * domain / 4},
	}
	// Warm the scratch pool and verify the plan picks the bitmap.
	if _, err := r.Count(preds); err != nil {
		t.Fatal(err)
	}
	sc := r.getScratch()
	if empty, err := r.planScratch(sc, preds); err != nil || empty {
		t.Fatal(err)
	}
	if ok, _ := r.chooseBitmap(sc); !ok {
		t.Fatal("steady-state test expects the bitmap path")
	}
	r.putScratch(sc)

	allocs := testing.AllocsPerRun(50, func() {
		if _, err := r.Count(preds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("steady-state Count allocates %.2f times per query, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := r.Sum("c", preds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("steady-state Sum allocates %.2f times per query, want 0", allocs)
	}
}
