package query

import (
	"math/rand"
	"testing"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/engine"
)

// buildTable returns a table of `attrs` uniform columns over [0, domain)
// plus the raw slices for oracle checks.
func buildTable(attrs, rows int, domain int64, seed int64) (*engine.Table, [][]int64) {
	t := engine.NewTable("R")
	cols := make([][]int64, attrs)
	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c", "d"}
	for i := 0; i < attrs; i++ {
		vals := make([]int64, rows)
		for j := range vals {
			vals[j] = rng.Int63n(domain)
		}
		cols[i] = vals
		t.MustAddColumn(column.New(names[i], vals))
	}
	return t, cols
}

// oracle computes the qualifying row set by brute force.
func oracle(cols [][]int64, names map[string]int, preds []Predicate) []uint32 {
	if len(preds) == 0 {
		return nil
	}
	n := len(cols[0])
	var out []uint32
rows:
	for i := 0; i < n; i++ {
		for _, p := range preds {
			v := cols[names[p.Attr]][i]
			if v < p.Lo || v >= p.Hi {
				continue rows
			}
		}
		out = append(out, uint32(i))
	}
	return out
}

var names = map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}

func TestPlanOrdersBySelectivity(t *testing.T) {
	tab, _ := buildTable(3, 5000, 1000, 1)
	off := engine.NewOfflineExecutor(tab, 1)
	off.PrepareAll()
	r := New(tab, off, 2)

	preds := []Predicate{
		{Attr: "a", Lo: 0, Hi: 900}, // ~90%
		{Attr: "b", Lo: 0, Hi: 10},  // ~1%
		{Attr: "c", Lo: 0, Hi: 300}, // ~30%
	}
	ordered, ests := r.Plan(preds)
	if ordered[0].Attr != "b" || ordered[1].Attr != "c" || ordered[2].Attr != "a" {
		t.Fatalf("plan order = %v (estimates %v), want b, c, a", ordered, ests)
	}
	if ests[0] > ests[1] || ests[1] > ests[2] {
		t.Fatalf("estimates not ascending: %v", ests)
	}
}

func TestPlanUniformFallback(t *testing.T) {
	tab, _ := buildTable(2, 2000, 1<<20, 2)
	r := New(tab, engine.NewScanExecutor(tab, 2), 2)
	ordered, _ := r.Plan([]Predicate{
		{Attr: "a", Lo: 0, Hi: 1 << 19}, // half the domain
		{Attr: "b", Lo: 0, Hi: 1 << 10}, // a sliver
	})
	if ordered[0].Attr != "b" {
		t.Fatalf("uniform fallback drove on %q, want b", ordered[0].Attr)
	}
}

func TestNormalizeIntersectsDuplicates(t *testing.T) {
	tab, cols := buildTable(2, 3000, 1000, 3)
	r := New(tab, engine.NewScanExecutor(tab, 2), 2)
	got, err := r.Count([]Predicate{
		{Attr: "a", Lo: 100, Hi: 700},
		{Attr: "a", Lo: 300, Hi: 900},
		{Attr: "b", Lo: 0, Hi: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(oracle(cols, names, []Predicate{{Attr: "a", Lo: 300, Hi: 700}, {Attr: "b", Lo: 0, Hi: 500}}))
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	// Contradictory duplicates: empty result, no error.
	if n, err := r.Count([]Predicate{{Attr: "a", Lo: 0, Hi: 100}, {Attr: "a", Lo: 500, Hi: 600}}); err != nil || n != 0 {
		t.Fatalf("contradictory conjuncts = (%d, %v), want (0, nil)", n, err)
	}
}

func TestQueryErrors(t *testing.T) {
	tab, _ := buildTable(1, 100, 1000, 4)
	r := New(tab, engine.NewScanExecutor(tab, 1), 1)
	if _, err := r.Count(nil); err != ErrNoPredicates {
		t.Errorf("Count() err = %v, want ErrNoPredicates", err)
	}
	if _, err := r.Count([]Predicate{{Attr: "zz", Lo: 0, Hi: 1}}); err == nil {
		t.Error("unknown predicate attribute did not error")
	}
	if _, err := r.Sum("zz", []Predicate{{Attr: "a", Lo: 0, Hi: 1}}); err == nil {
		t.Error("unknown sum attribute did not error")
	}
	if _, err := r.Values(nil, []Predicate{{Attr: "a", Lo: 0, Hi: 1}}); err == nil {
		t.Error("Values without attributes did not error")
	}
}

// TestConjunctionMatchesOracle runs randomized conjunctions through the
// scan and adaptive access paths and checks all four query forms.
func TestConjunctionMatchesOracle(t *testing.T) {
	const domain = 1 << 12
	tab, cols := buildTable(4, 6000, domain, 5)
	execs := map[string]engine.Executor{
		"scan":     engine.NewScanExecutor(tab, 2),
		"adaptive": engine.NewAdaptiveExecutor(tab, cracking.Config{WithRows: true}, ""),
	}
	attrNames := []string{"a", "b", "c", "d"}
	for label, exec := range execs {
		t.Run(label, func(t *testing.T) {
			r := New(tab, exec, 2)
			rng := rand.New(rand.NewSource(7))
			for q := 0; q < 40; q++ {
				k := 2 + rng.Intn(3)
				perm := rng.Perm(4)
				preds := make([]Predicate, k)
				for i := 0; i < k; i++ {
					lo := rng.Int63n(domain)
					preds[i] = Predicate{Attr: attrNames[perm[i]], Lo: lo, Hi: lo + rng.Int63n(domain-lo) + 1}
				}
				want := oracle(cols, names, preds)

				n, err := r.Count(preds)
				if err != nil {
					t.Fatal(err)
				}
				if n != len(want) {
					t.Fatalf("query %d: count = %d, want %d (%v)", q, n, len(want), preds)
				}

				rows, err := r.Rows(preds)
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != len(want) {
					t.Fatalf("query %d: %d rows, want %d", q, len(rows), len(want))
				}
				for i := range rows {
					if rows[i] != want[i] {
						t.Fatalf("query %d: rows[%d] = %d, want %d", q, i, rows[i], want[i])
					}
				}

				sumAttr := attrNames[rng.Intn(4)]
				sum, err := r.Sum(sumAttr, preds)
				if err != nil {
					t.Fatal(err)
				}
				var wantSum int64
				for _, row := range want {
					wantSum += cols[names[sumAttr]][row]
				}
				if sum != wantSum {
					t.Fatalf("query %d: sum(%s) = %d, want %d", q, sumAttr, sum, wantSum)
				}

				vals, err := r.Values([]string{"a", sumAttr}, preds)
				if err != nil {
					t.Fatal(err)
				}
				if len(vals) != 2 || len(vals[0]) != len(want) {
					t.Fatalf("query %d: Values shape %d/%d, want 2/%d", q, len(vals), len(vals[0]), len(want))
				}
				for i, row := range want {
					if vals[0][i] != cols[0][row] || vals[1][i] != cols[names[sumAttr]][row] {
						t.Fatalf("query %d: Values[%d] mismatch", q, i)
					}
				}
			}
		})
	}
}

// TestSinglePredicateFastPaths: one conjunct behaves exactly like the
// executor's native forms.
func TestSinglePredicateFastPaths(t *testing.T) {
	tab, cols := buildTable(2, 4000, 1000, 6)
	r := New(tab, engine.NewScanExecutor(tab, 2), 2)
	preds := []Predicate{{Attr: "b", Lo: 200, Hi: 600}}
	want := oracle(cols, names, preds)
	if n, err := r.Count(preds); err != nil || n != len(want) {
		t.Fatalf("Count = (%d, %v), want %d", n, err, len(want))
	}
	var wantSum int64
	for _, row := range want {
		wantSum += cols[1][row]
	}
	if s, err := r.Sum("b", preds); err != nil || s != wantSum {
		t.Fatalf("Sum = (%d, %v), want %d", s, err, wantSum)
	}
	rows, err := r.Rows(preds)
	if err != nil || len(rows) != len(want) {
		t.Fatalf("Rows = (%d rows, %v), want %d", len(rows), err, len(want))
	}
}
