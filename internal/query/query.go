// Package query is the multi-predicate query subsystem: a planner and
// executor for conjunctive select-project-aggregate queries of the form
//
//	SELECT agg(c) FROM R WHERE a BETWEEN .. AND b BETWEEN .. [AND ...]
//
// over any engine.Executor mode. It follows the column-store pipeline
// of the paper's Section 3.1, generalized to several predicates:
//
//  1. Plan: estimate each conjunct's selectivity — exactly, when the
//     mode's index structures can answer (sorted columns, existing
//     cracker boundaries, via engine.CardEstimator), otherwise a
//     uniform guess over the attribute's cached value domain — and
//     order the conjuncts most selective first.
//  2. Choose a representation for the intermediate selection vector
//     from the driving conjunct's estimated selectivity: a dense drive
//     (at or above the bitmap crossover) flows through a word-packed
//     column.Bitmap — one bit per base position, residual conjuncts
//     intersect word at a time — while a sparse drive materializes the
//     classic position list and refines by positional probes. Both
//     representations live in pooled scratch, so the steady-state
//     count/aggregate path allocates nothing.
//  3. Drive: evaluate the most selective conjunct through the mode's
//     native access path (Executor.SelectBitmap or Executor.SelectRows:
//     cracked pieces, sorted slices or parallel scan), producing the
//     candidate selection vector. This is the only conjunct that builds
//     or refines an index.
//  4. Refine: evaluate every remaining conjunct against the candidate
//     vector in place — bitmap words ANDed against branch-free
//     predicate masks (zero words skipped), or position lists filtered
//     by probes into the attribute's current data (column.View, late
//     tuple reconstruction) — cheapest first, so each pass runs over
//     the smallest possible intermediate.
//  5. Project/aggregate: count, fold or fetch at the surviving
//     positions; the bitmap converts to positions (already ascending)
//     only at this boundary, and only for the materializing forms.
//
// Under ModeHolistic every conjunct — not only the driving one — is
// reported to the executor (engine.PredicateSink), so all touched
// attributes enter the index space and background refinement spreads
// across them; a later query can then drive on any of them cheaply.
//
// Updates: the driving select merges the pending operations covering
// its range (as every single-attribute select does), and the probe
// views reflect all logical inserts/deletes/updates regardless of merge
// state, so conjunctive results are correct under concurrent updates.
// Rows that lack a value in a referenced attribute (inserted into other
// attributes only, or deleted) never qualify, mirroring SQL NULL
// semantics.
package query

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"holistic/internal/column"
	"holistic/internal/engine"
	"holistic/internal/groupby"
	"holistic/internal/obs"
	"holistic/internal/obs/econ"
	"holistic/internal/obs/flight"
)

// Predicate is one range conjunct: lo <= attr < hi.
type Predicate struct {
	Attr   string
	Lo, Hi int64
}

// RepPolicy selects the intermediate-representation policy of a Runner.
type RepPolicy int32

const (
	// RepAuto picks per query from the driving conjunct's estimated
	// selectivity (the crossover rule). The default.
	RepAuto RepPolicy = iota
	// RepPosList forces position-list intermediates (the pre-bitmap
	// behaviour); used by tests and the crossover benchmark.
	RepPosList
	// RepBitmap forces bitmap intermediates whenever the executor can
	// produce them.
	RepBitmap
)

// DefaultBitmapCrossover is the driving-conjunct selectivity at and
// above which RepAuto picks the bitmap representation. A bitmap costs
// N/8 bytes regardless of selectivity while a position list costs 4
// bytes per qualifying row, so memory parity sits at ~3% selectivity;
// time parity sits a little higher because the branch-free word scan
// pays a fixed O(N/64) pass while the position list's branchy scan is
// cheap exactly when the branch is predictable (low selectivity) and
// misprediction-bound when it is not. The selvec benchmark sweeps the
// crossover empirically: on the development machine the curves met
// between 5% and 10% driving selectivity (bitmap 0.9x at 5%, 1.25x at
// 10%, 3.1x at 50%), and the bitmap path additionally runs
// allocation-free, so the default sits at the low end of that band.
const DefaultBitmapCrossover = 0.06

// Runner plans and executes conjunctive queries over one table through
// one executor mode. It is safe for concurrent use.
type Runner struct {
	table   *engine.Table
	exec    engine.Executor
	threads int

	policy        atomic.Int32
	crossover     atomic.Uint64 // math.Float64bits of the crossover selectivity
	groupStrategy atomic.Int32  // groupby.Strategy override for grouped queries
	joinStrategy  atomic.Int32  // JoinStrategy override for joins driven by this runner

	// scratchPool recycles per-query execution state (selection
	// vectors, view maps, plan arrays) so steady-state queries do not
	// allocate.
	scratchPool sync.Pool

	// met aggregates per-op latency, representation and strategy
	// telemetry; nil leaves every terminal uninstrumented. Attach before
	// the first query.
	met *obs.QueryMetrics
	// fr is the flight recorder every terminal and physical-choice site
	// records into; nil disables flight recording (the Record methods
	// are nil-safe, so the hot paths call through unconditionally).
	fr *flight.Recorder
	// ec is the refinement-economics recorder: predicate admissions
	// charge the access heatmaps and the driving select's stage latency
	// feeds the per-index benefit stream. Nil disables (the Note
	// methods are nil-safe).
	ec *econ.Econ
	// sink receives one pooled QueryTrace per terminal when attached
	// (boxed so swapping the interface is one atomic pointer store).
	sink atomic.Pointer[sinkBox]

	mu      sync.Mutex
	domains map[string][2]int64 // cached base-column min/max per attribute
}

// sinkBox wraps the sink interface value for atomic.Pointer.
type sinkBox struct{ s obs.TraceSink }

// New builds a runner; threads bounds the parallelism of probe and
// fetch kernels.
func New(t *engine.Table, exec engine.Executor, threads int) *Runner {
	if threads < 1 {
		threads = 1
	}
	r := &Runner{table: t, exec: exec, threads: threads, domains: make(map[string][2]int64)}
	r.crossover.Store(math.Float64bits(DefaultBitmapCrossover))
	return r
}

// SetRepPolicy overrides the intermediate-representation policy; safe
// to call concurrently with queries.
func (r *Runner) SetRepPolicy(p RepPolicy) { r.policy.Store(int32(p)) }

// SetBitmapCrossover overrides the RepAuto crossover selectivity; safe
// to call concurrently with queries.
func (r *Runner) SetBitmapCrossover(sel float64) { r.crossover.Store(math.Float64bits(sel)) }

// SetMetrics attaches the telemetry aggregate every terminal records
// into (nil detaches). Attach before running queries; the recording
// paths themselves are zero-allocation.
func (r *Runner) SetMetrics(m *obs.QueryMetrics) { r.met = m }

// Metrics returns the attached telemetry aggregate, or nil.
func (r *Runner) Metrics() *obs.QueryMetrics { return r.met }

// SetFlight attaches the flight recorder the terminals, representation
// and strategy choices record audit events into (nil detaches). Attach
// before running queries, like SetMetrics.
func (r *Runner) SetFlight(fr *flight.Recorder) { r.fr = fr }

// SetEcon attaches the refinement-economics recorder predicate spans
// and drive latencies are charged to (nil detaches). Attach before
// running queries, like SetMetrics.
func (r *Runner) SetEcon(e *econ.Econ) { r.ec = e }

// SetTraceSink streams one execution trace per terminal into s (nil
// stops tracing). Safe to swap concurrently with queries.
func (r *Runner) SetTraceSink(s obs.TraceSink) {
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// ErrNoPredicates is returned by query forms invoked without a single
// Where clause.
var ErrNoPredicates = fmt.Errorf("query: at least one predicate is required")

// scratch is the pooled per-query execution state. Exactly one of sel
// (position-list form) or bm (bitmap form) carries the candidates after
// runSel; views holds the snapshot each referenced attribute was
// filtered through, which the fetch step MUST reuse — a fresh snapshot
// taken later could already reflect a concurrent delete and would make
// the fetch fail.
type scratch struct {
	preds []Predicate
	ests  []float64
	sel   column.PosList
	bm    *column.Bitmap
	views map[string]column.View
	// Grouped-query extensions: the referenced-attribute work list and
	// the groupby spec (with its backing arrays), reused per query.
	extras []string
	gkeys  []groupby.Key
	gviews []column.View
	gspec  groupby.Spec
	// Join-side extensions: the gathered join keys, their aligned rows
	// and the payload values of one side, reused per query.
	jkeys []int64
	jrows column.PosList
	jvals []int64
	// Telemetry: the query sequence number and — when a sink is
	// attached or an Explain runs — the trace the stages fill.
	seq   uint64
	trace *obs.QueryTrace
	// Flight-recorder telemetry: stage durations (timed when a trace or
	// a flight recorder is attached) and the two statistics behind the
	// last physical-strategy choice (key-order spans; always set by the
	// choosers so the strategy audit event carries its inputs).
	driveNs, refineNs int64
	fstat             [2]float64
}

//holistic:alloc-ok pool warm-up allocates the recycled object
func (r *Runner) getScratch() *scratch {
	sc, _ := r.scratchPool.Get().(*scratch)
	if sc == nil {
		sc = &scratch{bm: column.NewBitmap(0), views: make(map[string]column.View, 4)}
	}
	return sc
}

//holistic:noalloc
func (r *Runner) putScratch(sc *scratch) {
	clear(sc.views) // drop references to column data; buckets are retained
	sc.sel = sc.sel[:0]
	sc.preds = sc.preds[:0]
	sc.ests = sc.ests[:0]
	sc.extras = sc.extras[:0]
	clear(sc.gkeys) // drop view references; capacity is retained
	sc.gkeys = sc.gkeys[:0]
	clear(sc.gviews)
	sc.gviews = sc.gviews[:0]
	sc.gspec = groupby.Spec{}
	sc.jkeys = sc.jkeys[:0]
	sc.jrows = sc.jrows[:0]
	sc.jvals = sc.jvals[:0]
	sc.seq = 0
	sc.trace = nil
	sc.driveNs, sc.refineNs = 0, 0
	sc.fstat[0], sc.fstat[1] = 0, 0
	r.scratchPool.Put(sc)
}

// begin opens one instrumented terminal: pooled scratch, the start
// timestamp (zero when uninstrumented) and — when a trace sink is
// attached — a pooled trace the stages fill. Explicit begin/finish
// pairs, not deferred closures: the bracket must not allocate.
//
//holistic:noalloc
func (r *Runner) begin(kind string) (*scratch, time.Time) {
	sc := r.getScratch()
	if r.met == nil {
		return sc, time.Time{}
	}
	sc.seq = r.met.NextSeq()
	if box := r.sink.Load(); box != nil {
		tr := obs.GetTrace()
		tr.Seq = sc.seq
		tr.Kind = kind
		tr.Mode = r.exec.Label()
		tr.Rows = r.table.Rows()
		sc.trace = tr
	}
	return sc, time.Now()
}

// finish closes a begin bracket: records the op latency, emits and
// recycles the trace, returns the scratch.
//
//holistic:noalloc
func (r *Runner) finish(sc *scratch, op obs.Op, start time.Time, result int64, err error) {
	if r.met == nil {
		r.putScratch(sc)
		return
	}
	elapsed := time.Since(start).Nanoseconds()
	r.met.RecordOp(op, elapsed)
	r.fr.RecordQuery(uint8(op), sc.seq, elapsed, sc.driveNs, sc.refineNs, result)
	if tr := sc.trace; tr != nil {
		tr.Result = result
		tr.TotalNanos = elapsed
		if err != nil {
			tr.Err = err.Error()
		}
		if box := r.sink.Load(); box != nil {
			box.s.Emit(tr)
		}
		// Recycle through the field: sc.trace is how the pool
		// discipline knows scratch-attached traces reach PutTrace.
		obs.PutTrace(sc.trace)
		sc.trace = nil
	}
	r.putScratch(sc)
}

// domain returns the cached [min, max] of attr's base column, scanning
// it once on first use.
//
//holistic:noalloc
func (r *Runner) domain(attr string) (lo, hi int64) {
	r.mu.Lock()
	d, ok := r.domains[attr]
	r.mu.Unlock()
	if ok {
		return d[0], d[1]
	}
	lo, hi = column.Bounds(r.table.Column(attr).Values())
	r.mu.Lock()
	r.domains[attr] = [2]int64{lo, hi}
	r.mu.Unlock()
	return lo, hi
}

// estimate returns the expected number of qualifying tuples for one
// conjunct: the executor's index-based answer when available, otherwise
// a uniform guess over the attribute's base domain.
//
//holistic:noalloc
func (r *Runner) estimate(p Predicate) float64 {
	if est, ok := r.exec.(engine.CardEstimator); ok {
		if n, _, ok := est.EstimateCount(p.Attr, p.Lo, p.Hi); ok {
			return n
		}
	}
	dLo, dHi := r.domain(p.Attr)
	return column.UniformEstimate(float64(r.table.Rows()), dLo, dHi, p.Lo, p.Hi)
}

// Plan orders the conjuncts most selective first (stable on ties) and
// returns the per-conjunct estimates alongside, aligned with the
// returned order. Exported for telemetry and tests; the query forms
// plan internally through pooled scratch.
func (r *Runner) Plan(preds []Predicate) ([]Predicate, []float64) {
	ordered := make([]Predicate, len(preds))
	ests := make([]float64, len(preds))
	copy(ordered, preds)
	for i, p := range ordered {
		ests[i] = r.estimate(p)
	}
	sortByEstimate(ordered, ests)
	return ordered, ests
}

// sortByEstimate stably sorts preds ascending by est (insertion sort:
// conjunct counts are tiny and it allocates nothing).
//
//holistic:noalloc
func sortByEstimate(preds []Predicate, ests []float64) {
	for i := 1; i < len(preds); i++ {
		for j := i; j > 0 && ests[j] < ests[j-1]; j-- {
			ests[j], ests[j-1] = ests[j-1], ests[j]
			preds[j], preds[j-1] = preds[j-1], preds[j]
		}
	}
}

// planScratch validates attributes, intersects duplicate attributes
// into one conjunct, reports empty ranges, and orders the surviving
// conjuncts most selective first — all into sc, allocating nothing once
// the scratch is warm.
//
// errf builds a formatted error; the noalloc entry points route their
// cold error paths through it so the allocation sits behind one
// reviewed boundary.
//
//holistic:alloc-ok error paths format their diagnostics
func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

//holistic:alloc-ok error paths format diagnostics
func (r *Runner) planScratch(sc *scratch, preds []Predicate) (empty bool, err error) {
	if len(preds) == 0 {
		return false, ErrNoPredicates
	}
	out := sc.preds[:0]
	for _, p := range preds {
		if r.table.Column(p.Attr) == nil {
			return false, fmt.Errorf("query: unknown attribute %q", p.Attr)
		}
		merged := false
		for i := range out {
			if out[i].Attr == p.Attr {
				if p.Lo > out[i].Lo {
					out[i].Lo = p.Lo
				}
				if p.Hi < out[i].Hi {
					out[i].Hi = p.Hi
				}
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, p)
		}
	}
	sc.preds = out
	for _, p := range out {
		if p.Lo >= p.Hi {
			return true, nil
		}
	}
	ests := sc.ests[:0]
	for _, p := range out {
		ests = append(ests, r.estimate(p))
	}
	sc.ests = ests
	sortByEstimate(sc.preds, sc.ests)
	if tr := sc.trace; tr != nil {
		for i, p := range sc.preds {
			tr.AddConjunct(p.Attr, p.Lo, p.Hi, sc.ests[i], i == 0)
		}
	}
	if r.ec != nil {
		// Predicate admission charges the access heatmaps. Residual
		// conjuncts reach the executor through PredicateSpanSink (which
		// records them itself, with the cracker's domain); here only the
		// driving conjunct — plus everything when the mode has no span
		// sink — is charged, so each span lands exactly once.
		_, spanSink := r.exec.(engine.PredicateSpanSink)
		for i, p := range sc.preds {
			if i > 0 && spanSink {
				continue
			}
			dLo, dHi := r.domain(p.Attr)
			r.ec.NotePredicate(p.Attr, p.Lo, p.Hi, dLo, dHi)
		}
	}
	return false, nil
}

// view returns the update-aware positional view of attr, falling back
// to the bare base column on executors without update support (where
// the base is by construction current).
//
//holistic:alloc-ok error paths format diagnostics
func (r *Runner) view(attr string) (column.View, error) {
	if v, ok := r.exec.(engine.Viewer); ok {
		return v.View(attr)
	}
	c := r.table.Column(attr)
	if c == nil {
		return column.View{}, fmt.Errorf("query: unknown attribute %q", attr)
	}
	return column.View{Base: c.Values()}, nil
}

// chooseBitmap applies the representation policy to the planned query
// in sc: bitmaps need an executor that can produce them and pay off
// only when the driving conjunct is dense and there is at least one
// residual conjunct to intersect. The reason is a static string for the
// trace — the numbers it refers to travel as trace stats.
//
//holistic:noalloc
func (r *Runner) chooseBitmap(sc *scratch) (bool, string) {
	if len(sc.preds) < 2 {
		return false, "single conjunct: nothing to intersect"
	}
	if _, ok := r.exec.(engine.BitmapSelector); !ok {
		return false, "mode has no bitmap select path"
	}
	switch RepPolicy(r.policy.Load()) {
	case RepPosList:
		return false, "policy pins position lists"
	case RepBitmap:
		return true, "policy pins bitmaps"
	}
	rows := float64(r.table.Rows())
	if rows <= 0 {
		return false, "empty relation"
	}
	if sc.ests[0] >= math.Float64frombits(r.crossover.Load())*rows {
		return true, "estimated driving selectivity at or above crossover"
	}
	return false, "estimated driving selectivity below crossover"
}

// repChoice tells runSel how to represent the intermediate selection
// vector: by the crossover rule, or pinned (the grouped path always
// wants the bitmap — its accumulators and the sort strategy's cluster
// membership tests both consume bits).
type repChoice int

const (
	repByPolicy repChoice = iota
	repWantBitmap
)

// runSel executes plan steps 2-4 plus the presence filter for the
// extra (aggregate/projection) attributes: the driving conjunct runs
// through the mode's access path in the chosen representation, the rest
// refine in place. On return the candidates sit in sc.bm (useBitmap
// true) or sc.sel, and sc.views holds the snapshot each attribute was
// filtered through.
//
//holistic:noalloc
func (r *Runner) runSel(sc *scratch, extraAttrs []string, rep repChoice) (useBitmap bool, err error) {
	drive := sc.preds[0]
	var reason string
	if rep == repWantBitmap {
		_, useBitmap = r.exec.(engine.BitmapSelector)
		if useBitmap {
			reason = "pipeline consumes bits (grouped/join path)"
		} else {
			reason = "mode has no bitmap select path"
		}
	} else {
		useBitmap, reason = r.chooseBitmap(sc)
	}
	repKind := obs.RepPosList
	if useBitmap {
		repKind = obs.RepBitmap
	}
	if r.met != nil {
		r.met.RecordRep(repKind)
	}
	r.fr.RecordRep(uint8(repKind), sc.seq, int64(sc.ests[0]), int64(len(sc.preds)))
	tr := sc.trace
	timed := tr != nil || r.fr != nil || r.ec != nil
	var t0 time.Time
	if tr != nil {
		if useBitmap {
			tr.Rep = "bitmap"
		} else {
			tr.Rep = "poslist"
		}
		tr.RepReason = reason
		tr.SetStat("est_driving_rows", sc.ests[0])
	}
	if timed {
		t0 = time.Now()
	}
	if useBitmap {
		if err := r.exec.(engine.BitmapSelector).SelectBitmap(drive.Attr, drive.Lo, drive.Hi, sc.bm); err != nil {
			return false, err
		}
	} else {
		rows, err := r.exec.SelectRows(drive.Attr, drive.Lo, drive.Hi)
		if err != nil {
			return false, err
		}
		sc.sel = rows // SelectRows results are caller-owned: refine in place
	}
	if timed {
		sc.driveNs = time.Since(t0).Nanoseconds()
		// The benefit stream: this drive's latency lands in the index's
		// current convergence bucket, where the ledger's estimator
		// compares it against the unrefined baseline.
		r.ec.NoteDrive(drive.Attr, sc.driveNs)
	}
	if tr != nil {
		if useBitmap {
			tr.Scanned = int64(sc.bm.Count())
		} else {
			tr.Scanned = int64(len(sc.sel))
		}
		tr.SetCum(0, tr.Scanned)
		tr.StageNanos("drive", sc.driveNs)
	}
	if timed {
		t0 = time.Now()
	}
	if span, ok := r.exec.(engine.PredicateSpanSink); ok {
		for _, p := range sc.preds[1:] {
			if err := span.NotePredicateSpan(p.Attr, p.Lo, p.Hi); err != nil {
				return false, err
			}
		}
	} else if sink, ok := r.exec.(engine.PredicateSink); ok {
		for _, p := range sc.preds[1:] {
			if err := sink.NotePredicate(p.Attr); err != nil {
				return false, err
			}
		}
	}
	// live mirrors the poslist path's len > 0 guards: once the
	// conjunction is empty, later stages skip the data entirely.
	live := !useBitmap || sc.bm.Any()
	for i, p := range sc.preds[1:] {
		w, err := r.view(p.Attr)
		if err != nil {
			return false, err
		}
		sc.views[p.Attr] = w
		evaluated := false
		if useBitmap {
			if live {
				w.FilterBitmap(sc.bm, p.Lo, p.Hi, r.threads)
				live = sc.bm.Any()
				evaluated = true
			}
		} else if len(sc.sel) > 0 {
			sc.sel = w.FilterRowsInPlace(sc.sel, p.Lo, p.Hi, r.threads)
			evaluated = true
		}
		// Surviving counts are measured only when tracing (the bitmap
		// popcount is an extra pass); skipped conjuncts keep CumRows -1.
		if tr != nil && evaluated {
			if useBitmap {
				tr.SetCum(i+1, int64(sc.bm.Count()))
			} else {
				tr.SetCum(i+1, int64(len(sc.sel)))
			}
		}
	}
	if timed && len(sc.preds) > 1 {
		sc.refineNs = time.Since(t0).Nanoseconds()
		if tr != nil {
			tr.StageNanos("refine", sc.refineNs)
		}
	}
	// Range-filtered attributes are present by construction; the other
	// referenced attributes (including the driving one, whose rows came
	// from the index rather than a view) get an explicit presence
	// filter through the snapshot that will serve the fetch.
	for _, attr := range extraAttrs {
		if _, ok := sc.views[attr]; ok {
			continue
		}
		w, err := r.view(attr)
		if err != nil {
			return false, err
		}
		sc.views[attr] = w
		if useBitmap {
			if live {
				w.PresentBitmap(sc.bm)
				live = sc.bm.Any()
			}
		} else if len(sc.sel) > 0 {
			sc.sel = w.PresentRowsInPlace(sc.sel)
		}
	}
	return useBitmap, nil
}

// Count answers "select count(*) where <conjunction>". A single
// conjunct delegates to the mode's native count; a bitmap conjunction
// finishes with a popcount — neither materializes a position list.
//
//holistic:noalloc
func (r *Runner) Count(preds []Predicate) (int, error) {
	sc, start := r.begin(obs.KindCount)
	n, err := r.countSC(sc, preds)
	r.finish(sc, obs.OpCount, start, int64(n), err)
	return n, err
}

//holistic:noalloc
func (r *Runner) countSC(sc *scratch, preds []Predicate) (int, error) {
	empty, err := r.planScratch(sc, preds)
	if err != nil || empty {
		return 0, err
	}
	if len(sc.preds) == 1 {
		r.noteNativeRep(sc, "single conjunct answered by the mode's native count")
		n, err := r.exec.Count(sc.preds[0].Attr, sc.preds[0].Lo, sc.preds[0].Hi)
		r.noteNativeResult(sc, int64(n), err)
		return n, err
	}
	useBm, err := r.runSel(sc, nil, repByPolicy)
	if err != nil {
		return 0, err
	}
	var n int
	if useBm {
		n = sc.bm.Count()
	} else {
		n = len(sc.sel)
	}
	if tr := sc.trace; tr != nil {
		tr.Emitted = int64(n)
	}
	return n, nil
}

// noteNativeRep marks a traced single-conjunct query as answered by the
// executor's native access path (no intermediate representation).
//
//holistic:noalloc
func (r *Runner) noteNativeRep(sc *scratch, reason string) {
	if r.met != nil {
		r.met.RecordRep(obs.RepNative)
	}
	est := int64(0)
	if len(sc.ests) > 0 {
		est = int64(sc.ests[0])
	}
	r.fr.RecordRep(uint8(obs.RepNative), sc.seq, est, int64(len(sc.preds)))
	if tr := sc.trace; tr != nil {
		tr.Rep = "native"
		tr.RepReason = reason
	}
}

// noteNativeResult records the native path's cardinality on the trace.
//
//holistic:noalloc
func (r *Runner) noteNativeResult(sc *scratch, n int64, err error) {
	if tr := sc.trace; tr != nil && err == nil {
		tr.SetCum(0, n)
		tr.Scanned, tr.Emitted = n, n
	}
}

// Sum answers "select sum(attr) where <conjunction>". When the single
// conjunct is on attr itself the mode's native pushdown answers
// directly; otherwise attr folds late over the surviving candidates —
// straight off the selection vector, nothing is materialized.
//
//holistic:noalloc
func (r *Runner) Sum(attr string, preds []Predicate) (int64, error) {
	if r.table.Column(attr) == nil {
		return 0, errf("query: unknown attribute %q", attr)
	}
	sc, start := r.begin(obs.KindSum)
	s, err := r.sumSC(sc, attr, preds)
	r.finish(sc, obs.OpSum, start, s, err)
	return s, err
}

//holistic:noalloc
func (r *Runner) sumSC(sc *scratch, attr string, preds []Predicate) (int64, error) {
	empty, err := r.planScratch(sc, preds)
	if err != nil || empty {
		return 0, err
	}
	if len(sc.preds) == 1 && sc.preds[0].Attr == attr {
		r.noteNativeRep(sc, "single conjunct on the aggregated attribute: native sum pushdown")
		return r.exec.Sum(attr, sc.preds[0].Lo, sc.preds[0].Hi)
	}
	extra := [1]string{attr}
	useBm, err := r.runSel(sc, extra[:], repByPolicy)
	if err != nil {
		return 0, err
	}
	if tr := sc.trace; tr != nil {
		if useBm {
			tr.Emitted = int64(sc.bm.Count())
		} else {
			tr.Emitted = int64(len(sc.sel))
		}
	}
	if useBm {
		return sc.views[attr].SumBitmap(sc.bm), nil
	}
	return sc.views[attr].SumRows(sc.sel, r.threads), nil
}

// Rows materializes the qualifying base row ids in ascending order.
// Bitmap intermediates iterate in ascending position order, so the sort
// disappears on the dense path.
func (r *Runner) Rows(preds []Predicate) ([]uint32, error) {
	sc, start := r.begin(obs.KindRows)
	rows, err := r.rowsSC(sc, preds)
	r.finish(sc, obs.OpRows, start, int64(len(rows)), err)
	return rows, err
}

func (r *Runner) rowsSC(sc *scratch, preds []Predicate) ([]uint32, error) {
	empty, err := r.planScratch(sc, preds)
	if err != nil || empty {
		return nil, err
	}
	if len(sc.preds) == 1 {
		r.noteNativeRep(sc, "single conjunct materialized by the mode's native row select")
		rows, err := r.exec.SelectRows(sc.preds[0].Attr, sc.preds[0].Lo, sc.preds[0].Hi)
		if err != nil {
			return nil, err
		}
		r.noteNativeResult(sc, int64(len(rows)), nil)
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		return rows, nil
	}
	useBm, err := r.runSel(sc, nil, repByPolicy)
	if err != nil {
		return nil, err
	}
	var out []uint32
	if useBm {
		out = sc.bm.AppendPositions(make(column.PosList, 0, sc.bm.Count()))
	} else {
		out = append([]uint32(nil), sc.sel...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	if tr := sc.trace; tr != nil {
		tr.Emitted = int64(len(out))
	}
	return out, nil
}

// Values materializes the requested attributes of the qualifying
// tuples: one aligned slice per attribute, tuples in ascending row-id
// order. This is the project operator over the conjunction's selection
// vector.
func (r *Runner) Values(attrs []string, preds []Predicate) ([][]int64, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("query: Values needs at least one attribute")
	}
	for _, a := range attrs {
		if r.table.Column(a) == nil {
			return nil, fmt.Errorf("query: unknown attribute %q", a)
		}
	}
	sc, start := r.begin(obs.KindValues)
	out, err := r.valuesSC(sc, attrs, preds)
	var emitted int64
	if len(out) > 0 {
		emitted = int64(len(out[0]))
	}
	r.finish(sc, obs.OpValues, start, emitted, err)
	return out, err
}

func (r *Runner) valuesSC(sc *scratch, attrs []string, preds []Predicate) ([][]int64, error) {
	empty, err := r.planScratch(sc, preds)
	if err != nil {
		return nil, err
	}
	out := make([][]int64, len(attrs))
	if empty {
		for i := range out {
			out[i] = []int64{}
		}
		return out, nil
	}
	useBm, err := r.runSel(sc, attrs, repByPolicy)
	if err != nil {
		return nil, err
	}
	if useBm {
		n := sc.bm.Count()
		for i, a := range attrs {
			out[i] = sc.views[a].FetchBitmap(sc.bm, make([]int64, 0, n))
		}
		return out, nil
	}
	sorted := append(column.PosList(nil), sc.sel...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, a := range attrs {
		out[i] = sc.views[a].FetchRows(sorted, r.threads)
	}
	return out, nil
}
