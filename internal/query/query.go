// Package query is the multi-predicate query subsystem: a planner and
// executor for conjunctive select-project-aggregate queries of the form
//
//	SELECT agg(c) FROM R WHERE a BETWEEN .. AND b BETWEEN .. [AND ...]
//
// over any engine.Executor mode. It follows the column-store pipeline
// of the paper's Section 3.1, generalized to several predicates:
//
//  1. Plan: estimate each conjunct's selectivity — exactly, when the
//     mode's index structures can answer (sorted columns, existing
//     cracker boundaries, via engine.CardEstimator), otherwise a
//     uniform guess over the attribute's cached value domain — and
//     order the conjuncts most selective first.
//  2. Drive: evaluate the most selective conjunct through the mode's
//     native access path (Executor.SelectRows: cracked pieces, sorted
//     slices or parallel scan), producing a candidate position list.
//     This is the only conjunct that builds or refines an index.
//  3. Refine: evaluate every remaining conjunct by positional probes of
//     the candidate list into the attribute's current data
//     (column.View.FilterRows — late tuple reconstruction), cheapest
//     first, so each probe pass runs over the smallest possible list.
//  4. Project/aggregate: fetch the requested attributes at the
//     surviving positions and count, sum, or materialize.
//
// Under ModeHolistic every conjunct — not only the driving one — is
// reported to the executor (engine.PredicateSink), so all touched
// attributes enter the index space and background refinement spreads
// across them; a later query can then drive on any of them cheaply.
//
// Updates: the driving select merges the pending operations covering
// its range (as every single-attribute select does), and the probe
// views reflect all logical inserts/deletes/updates regardless of merge
// state, so conjunctive results are correct under concurrent updates.
// Rows that lack a value in a referenced attribute (inserted into other
// attributes only, or deleted) never qualify, mirroring SQL NULL
// semantics.
package query

import (
	"fmt"
	"sort"
	"sync"

	"holistic/internal/column"
	"holistic/internal/engine"
)

// Predicate is one range conjunct: lo <= attr < hi.
type Predicate struct {
	Attr   string
	Lo, Hi int64
}

// Runner plans and executes conjunctive queries over one table through
// one executor mode. It is safe for concurrent use.
type Runner struct {
	table   *engine.Table
	exec    engine.Executor
	threads int

	mu      sync.Mutex
	domains map[string][2]int64 // cached base-column min/max per attribute
}

// New builds a runner; threads bounds the parallelism of probe and
// fetch kernels.
func New(t *engine.Table, exec engine.Executor, threads int) *Runner {
	if threads < 1 {
		threads = 1
	}
	return &Runner{table: t, exec: exec, threads: threads, domains: make(map[string][2]int64)}
}

// ErrNoPredicates is returned by query forms invoked without a single
// Where clause.
var ErrNoPredicates = fmt.Errorf("query: at least one predicate is required")

// normalize validates attributes, drops empty ranges to an empty
// result, and intersects duplicate attributes into one conjunct.
func (r *Runner) normalize(preds []Predicate) (out []Predicate, empty bool, err error) {
	if len(preds) == 0 {
		return nil, false, ErrNoPredicates
	}
	byAttr := make(map[string]int, len(preds))
	for _, p := range preds {
		if r.table.Column(p.Attr) == nil {
			return nil, false, fmt.Errorf("query: unknown attribute %q", p.Attr)
		}
		if i, ok := byAttr[p.Attr]; ok {
			q := &out[i]
			if p.Lo > q.Lo {
				q.Lo = p.Lo
			}
			if p.Hi < q.Hi {
				q.Hi = p.Hi
			}
			continue
		}
		byAttr[p.Attr] = len(out)
		out = append(out, p)
	}
	for _, p := range out {
		if p.Lo >= p.Hi {
			return nil, true, nil
		}
	}
	return out, false, nil
}

// domain returns the cached [min, max] of attr's base column, scanning
// it once on first use.
func (r *Runner) domain(attr string) (lo, hi int64) {
	r.mu.Lock()
	d, ok := r.domains[attr]
	r.mu.Unlock()
	if ok {
		return d[0], d[1]
	}
	lo, hi = column.Bounds(r.table.Column(attr).Values())
	r.mu.Lock()
	r.domains[attr] = [2]int64{lo, hi}
	r.mu.Unlock()
	return lo, hi
}

// estimate returns the expected number of qualifying tuples for one
// conjunct: the executor's index-based answer when available, otherwise
// a uniform guess over the attribute's base domain.
func (r *Runner) estimate(p Predicate) float64 {
	if est, ok := r.exec.(engine.CardEstimator); ok {
		if n, _, ok := est.EstimateCount(p.Attr, p.Lo, p.Hi); ok {
			return n
		}
	}
	dLo, dHi := r.domain(p.Attr)
	return column.UniformEstimate(float64(r.table.Rows()), dLo, dHi, p.Lo, p.Hi)
}

// Plan orders the conjuncts most selective first (stable on ties) and
// returns the per-conjunct estimates alongside, aligned with the
// returned order. Exported for telemetry and tests; the query forms
// plan internally.
func (r *Runner) Plan(preds []Predicate) ([]Predicate, []float64) {
	ests := make([]float64, len(preds))
	idx := make([]int, len(preds))
	for i, p := range preds {
		ests[i] = r.estimate(p)
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ests[idx[a]] < ests[idx[b]] })
	ordered := make([]Predicate, len(preds))
	ordEst := make([]float64, len(preds))
	for i, j := range idx {
		ordered[i] = preds[j]
		ordEst[i] = ests[j]
	}
	return ordered, ordEst
}

// view returns the update-aware positional view of attr, falling back
// to the bare base column on executors without update support (where
// the base is by construction current).
func (r *Runner) view(attr string) (column.View, error) {
	if v, ok := r.exec.(engine.Viewer); ok {
		return v.View(attr)
	}
	c := r.table.Column(attr)
	if c == nil {
		return column.View{}, fmt.Errorf("query: unknown attribute %q", attr)
	}
	return column.View{Base: c.Values()}, nil
}

// candidates runs plan steps 1-3 plus the presence filter for the
// extra (aggregate/projection) attributes, returning the qualifying
// positions in the driving access path's order together with the view
// snapshot each attribute was filtered through. Callers that fetch
// values MUST reuse these views: every position in sel is guaranteed
// present in them, while a fresh snapshot taken later could already
// reflect a concurrent delete and would make FetchRows fail.
func (r *Runner) candidates(preds []Predicate, extraAttrs []string) (column.PosList, map[string]column.View, error) {
	ordered, _ := r.Plan(preds)
	drive := ordered[0]
	rows, err := r.exec.SelectRows(drive.Attr, drive.Lo, drive.Hi)
	if err != nil {
		return nil, nil, err
	}
	if sink, ok := r.exec.(engine.PredicateSink); ok {
		for _, p := range ordered[1:] {
			if err := sink.NotePredicate(p.Attr); err != nil {
				return nil, nil, err
			}
		}
	}
	views := make(map[string]column.View, len(ordered)+len(extraAttrs))
	sel := column.PosList(rows)
	for _, p := range ordered[1:] {
		w, err := r.view(p.Attr)
		if err != nil {
			return nil, nil, err
		}
		views[p.Attr] = w
		if len(sel) > 0 {
			sel = w.FilterRows(sel, p.Lo, p.Hi, r.threads)
		}
	}
	// Range-filtered attributes are present by construction; the other
	// referenced attributes (including the driving one, whose rows came
	// from the index rather than a view) get an explicit presence
	// filter through the snapshot that will serve the fetch.
	for _, attr := range extraAttrs {
		if _, ok := views[attr]; ok {
			continue
		}
		w, err := r.view(attr)
		if err != nil {
			return nil, nil, err
		}
		views[attr] = w
		if len(sel) > 0 {
			sel = w.PresentRows(sel)
		}
	}
	return sel, views, nil
}

// Count answers "select count(*) where <conjunction>". A single
// conjunct delegates to the mode's native count (no position list is
// materialized).
func (r *Runner) Count(preds []Predicate) (int, error) {
	ps, empty, err := r.normalize(preds)
	if err != nil || empty {
		return 0, err
	}
	if len(ps) == 1 {
		return r.exec.Count(ps[0].Attr, ps[0].Lo, ps[0].Hi)
	}
	sel, _, err := r.candidates(ps, nil)
	if err != nil {
		return 0, err
	}
	return len(sel), nil
}

// Sum answers "select sum(attr) where <conjunction>". When the single
// conjunct is on attr itself the mode's native pushdown answers
// directly; otherwise the candidate positions fetch attr late.
func (r *Runner) Sum(attr string, preds []Predicate) (int64, error) {
	if r.table.Column(attr) == nil {
		return 0, fmt.Errorf("query: unknown attribute %q", attr)
	}
	ps, empty, err := r.normalize(preds)
	if err != nil || empty {
		return 0, err
	}
	if len(ps) == 1 && ps[0].Attr == attr {
		return r.exec.Sum(attr, ps[0].Lo, ps[0].Hi)
	}
	sel, views, err := r.candidates(ps, []string{attr})
	if err != nil {
		return 0, err
	}
	var s int64
	for _, v := range views[attr].FetchRows(sel, r.threads) {
		s += v
	}
	return s, nil
}

// Rows materializes the qualifying base row ids in ascending order.
func (r *Runner) Rows(preds []Predicate) ([]uint32, error) {
	ps, empty, err := r.normalize(preds)
	if err != nil || empty {
		return nil, err
	}
	var sel column.PosList
	if len(ps) == 1 {
		rows, err := r.exec.SelectRows(ps[0].Attr, ps[0].Lo, ps[0].Hi)
		if err != nil {
			return nil, err
		}
		sel = rows
	} else if sel, _, err = r.candidates(ps, nil); err != nil {
		return nil, err
	}
	out := append([]uint32(nil), sel...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Values materializes the requested attributes of the qualifying
// tuples: one aligned slice per attribute, tuples in ascending row-id
// order. This is the project operator over the conjunction's position
// list.
func (r *Runner) Values(attrs []string, preds []Predicate) ([][]int64, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("query: Values needs at least one attribute")
	}
	for _, a := range attrs {
		if r.table.Column(a) == nil {
			return nil, fmt.Errorf("query: unknown attribute %q", a)
		}
	}
	ps, empty, err := r.normalize(preds)
	if err != nil {
		return nil, err
	}
	out := make([][]int64, len(attrs))
	if empty {
		for i := range out {
			out[i] = []int64{}
		}
		return out, nil
	}
	sel, views, err := r.candidates(ps, attrs)
	if err != nil {
		return nil, err
	}
	sorted := append(column.PosList(nil), sel...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, a := range attrs {
		out[i] = views[a].FetchRows(sorted, r.threads)
	}
	return out, nil
}
