package query

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/groupby"
	"holistic/internal/holistic"
	"holistic/internal/join"
)

// joinFixture builds two relations with a controlled key overlap: L(k,
// v) and R(k, w), keys drawn from a small domain so fan-out is real.
func joinFixture(t testing.TB, rows int, domain int64, seed int64) (lt, rt *engine.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(name string, n int) *engine.Table {
		tab := engine.NewTable(name)
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63n(domain)
			vals[i] = rng.Int63n(1000)
		}
		tab.MustAddColumn(column.New("k", keys))
		tab.MustAddColumn(column.New("v", vals))
		return tab
	}
	return mk("L", rows), mk("R", rows*3/2)
}

// joinExecs builds one executor per strategy-relevant mode over a
// table (the full seven-mode sweep lives in the repository root's
// differential test; here the access-path variety matters).
func joinExecs(tab *engine.Table, threads int) map[string]engine.Executor {
	crackCfg := cracking.Config{Kernel: cracking.KernelVectorized, ParallelWorkers: threads, WithRows: true}
	return map[string]engine.Executor{
		"scan":     engine.NewScanExecutor(tab, threads),
		"offline":  engine.NewOfflineExecutor(tab, threads),
		"adaptive": engine.NewAdaptiveExecutor(tab, crackCfg, ""),
	}
}

// oracleJoin computes the expected join folds by nested loop over the
// base columns under both sides' predicates.
func oracleJoin(lt, rt *engine.Table, lPreds, rPreds []Predicate, sumSide join.Side, sumAttr string) (count, sum int64, pairs [][2]uint32) {
	qual := func(tab *engine.Table, preds []Predicate, row int) bool {
		for _, p := range preds {
			v := tab.Column(p.Attr).Values()[row]
			if v < p.Lo || v >= p.Hi {
				return false
			}
		}
		return true
	}
	lk := lt.Column("k").Values()
	rk := rt.Column("k").Values()
	for i := range lk {
		if !qual(lt, lPreds, i) {
			continue
		}
		for j := range rk {
			if !qual(rt, rPreds, j) {
				continue
			}
			if lk[i] != rk[j] {
				continue
			}
			count++
			if sumAttr != "" {
				if sumSide == join.Left {
					sum += lt.Column(sumAttr).Values()[i]
				} else {
					sum += rt.Column(sumAttr).Values()[j]
				}
			}
			pairs = append(pairs, [2]uint32{uint32(i), uint32(j)})
		}
	}
	return count, sum, pairs
}

// TestJoinMatchesOracleAcrossExecutors drives randomized joins (with
// and without per-side predicates) through every executor pairing and
// both forced strategies, comparing Count, Sum, Pairs and Grouped
// against the nested-loop oracle.
func TestJoinMatchesOracleAcrossExecutors(t *testing.T) {
	lt, rt := joinFixture(t, 600, 200, 21)
	rng := rand.New(rand.NewSource(22))
	for lName, lExec := range joinExecs(lt, 2) {
		for rName, rExec := range joinExecs(rt, 2) {
			t.Run(lName+"_"+rName, func(t *testing.T) {
				defer lExec.Close()
				defer rExec.Close()
				lr := New(lt, lExec, 2)
				rr := New(rt, rExec, 2)
				for q := 0; q < 8; q++ {
					var lPreds, rPreds []Predicate
					if q%2 == 0 {
						lPreds = []Predicate{{Attr: "v", Lo: 0, Hi: rng.Int63n(900) + 100}}
					}
					if q%3 == 0 {
						rPreds = []Predicate{{Attr: "v", Lo: rng.Int63n(300), Hi: 1000}}
					}
					sumSide := join.Side(q % 2)
					wantCount, wantSum, wantPairs := oracleJoin(lt, rt, lPreds, rPreds, sumSide, "v")

					for _, strat := range []JoinStrategy{JoinAuto, JoinHash, JoinMerge} {
						lr.SetJoinStrategy(strat)
						j := lr.Join(rr, "k", "k", lPreds, rPreds)
						n, err := j.Count()
						if err != nil {
							t.Fatal(err)
						}
						if n != wantCount {
							t.Fatalf("q%d strat=%v: count %d, want %d", q, strat, n, wantCount)
						}
						s, err := j.Sum(sumSide, "v")
						if err != nil {
							t.Fatal(err)
						}
						if s != wantSum {
							t.Fatalf("q%d strat=%v: sum %d, want %d", q, strat, s, wantSum)
						}
						pl, pr, err := j.Pairs()
						if err != nil {
							t.Fatal(err)
						}
						if len(pl) != len(wantPairs) {
							t.Fatalf("q%d strat=%v: %d pairs, want %d", q, strat, len(pl), len(wantPairs))
						}
						got := make([][2]uint32, len(pl))
						for i := range pl {
							got[i] = [2]uint32{pl[i], pr[i]}
						}
						sortPairs(got)
						sortPairs(wantPairs)
						for i := range got {
							if got[i] != wantPairs[i] {
								t.Fatalf("q%d strat=%v: pairs[%d] = %v, want %v", q, strat, i, got[i], wantPairs[i])
							}
						}
					}
					lr.SetJoinStrategy(JoinAuto)
				}
			})
		}
	}
}

func sortPairs(p [][2]uint32) {
	sort.Slice(p, func(a, b int) bool {
		if p[a][0] != p[b][0] {
			return p[a][0] < p[b][0]
		}
		return p[a][1] < p[b][1]
	})
}

// TestJoinGroupedMatchesOracle checks the join→group pipeline at the
// runner level: group by a left attribute, count and sum a right one.
func TestJoinGroupedMatchesOracle(t *testing.T) {
	lt, rt := joinFixture(t, 500, 80, 31)
	lExec := engine.NewAdaptiveExecutor(lt, cracking.Config{WithRows: true}, "")
	rExec := engine.NewOfflineExecutor(rt, 2)
	defer lExec.Close()
	defer rExec.Close()
	lr := New(lt, lExec, 2)
	rr := New(rt, rExec, 2)

	lPreds := []Predicate{{Attr: "v", Lo: 100, Hi: 900}}
	_, _, pairs := oracleJoin(lt, rt, lPreds, nil, join.Left, "")
	rw := rt.Column("v").Values()
	wantCnt := map[int64]int64{}
	wantSum := map[int64]int64{}
	// Group by the join key itself (left side), summing the right
	// payload.
	lk := lt.Column("k").Values()
	for _, pr := range pairs {
		g := lk[pr[0]]
		wantCnt[g]++
		wantSum[g] += rw[pr[1]]
	}

	res, err := lr.Join(rr, "k", "k", lPreds, nil).Grouped(
		[]GroupKey{{Side: join.Left, Attr: "k"}},
		[]GroupAgg{{Agg: groupby.Count()}, {Side: join.Right, Agg: groupby.Sum("v")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(wantCnt) {
		t.Fatalf("groups = %d, want %d", res.Len(), len(wantCnt))
	}
	for g := 0; g < res.Len(); g++ {
		k := res.Keys[0][g]
		if res.Aggs[0][g] != wantCnt[k] || res.Aggs[1][g] != wantSum[k] {
			t.Fatalf("group %d: (%d,%d), want (%d,%d)", k, res.Aggs[0][g], res.Aggs[1][g], wantCnt[k], wantSum[k])
		}
	}
}

// TestJoinSelfJoin: joining a relation with itself through one runner
// uses two independent pooled scratches and stays correct.
func TestJoinSelfJoin(t *testing.T) {
	tab := engine.NewTable("T")
	tab.MustAddColumn(column.New("k", []int64{1, 2, 2, 3}))
	tab.MustAddColumn(column.New("v", []int64{10, 20, 30, 40}))
	exec := engine.NewScanExecutor(tab, 1)
	r := New(tab, exec, 1)
	n, err := r.Join(r, "k", "k", nil, nil).Count()
	if err != nil {
		t.Fatal(err)
	}
	// 1-1, 2x2 block, 3-3: 1 + 4 + 1.
	if n != 6 {
		t.Fatalf("self-join count = %d, want 6", n)
	}
}

// TestJoinErrors covers unknown attributes on either side.
func TestJoinErrors(t *testing.T) {
	lt, rt := joinFixture(t, 50, 20, 41)
	lr := New(lt, engine.NewScanExecutor(lt, 1), 1)
	rr := New(rt, engine.NewScanExecutor(rt, 1), 1)
	if _, err := lr.Join(rr, "nope", "k", nil, nil).Count(); err == nil {
		t.Error("unknown left join attribute did not error")
	}
	if _, err := lr.Join(rr, "k", "nope", nil, nil).Count(); err == nil {
		t.Error("unknown right join attribute did not error")
	}
	if _, err := lr.Join(rr, "k", "k", nil, nil).Sum(join.Left, "nope"); err == nil {
		t.Error("unknown sum attribute did not error")
	}
	if _, err := lr.Join(rr, "k", "k", []Predicate{{Attr: "zz", Lo: 0, Hi: 1}}, nil).Count(); err == nil {
		t.Error("unknown predicate attribute did not error")
	}
}

// TestJoinFeedsPredicateSink: under the holistic executor both join
// attributes enter the daemon's index space on the first join.
func TestJoinFeedsPredicateSink(t *testing.T) {
	lt, rt := joinFixture(t, 400, 100, 51)
	mkHolistic := func(tab *engine.Table) *engine.HolisticExecutor {
		return engine.NewHolisticExecutor(tab, engine.HolisticConfig{
			Cracking: cracking.Config{WithRows: true},
			Daemon:   holistic.Config{Interval: time.Millisecond, Refinements: 4},
			Contexts: 2, UserThreads: 1,
		})
	}
	lExec, rExec := mkHolistic(lt), mkHolistic(rt)
	defer lExec.Close()
	defer rExec.Close()
	lr := New(lt, lExec, 2)
	rr := New(rt, rExec, 2)
	if _, err := lr.Join(rr, "k", "k", []Predicate{{Attr: "v", Lo: 0, Hi: 500}}, nil).Count(); err != nil {
		t.Fatal(err)
	}
	if lExec.CrackerIfExists("k") == nil {
		t.Error("left join attribute not admitted to the index space")
	}
	if rExec.CrackerIfExists("k") == nil {
		t.Error("right join attribute not admitted to the index space")
	}
}

// TestJoinMergeConvergence: once the daemon has refined both join
// attributes, the auto strategy's availability checks pass and the
// merge join returns the same folds as the hash join.
func TestJoinMergeConvergence(t *testing.T) {
	lt, rt := joinFixture(t, 3000, 500, 61)
	lExec := engine.NewOfflineExecutor(lt, 2)
	rExec := engine.NewOfflineExecutor(rt, 2)
	defer lExec.Close()
	defer rExec.Close()
	lr := New(lt, lExec, 2)
	rr := New(rt, rExec, 2)
	// Offline sorts on demand: after the first join both sides have
	// span-1 key-ordered paths, so auto picks merge for dense queries.
	j := lr.Join(rr, "k", "k", nil, nil)
	first, err := j.Count()
	if err != nil {
		t.Fatal(err)
	}
	lr.SetJoinStrategy(JoinMerge)
	merged, err := j.Count()
	if err != nil {
		t.Fatal(err)
	}
	lr.SetJoinStrategy(JoinHash)
	hashed, err := j.Count()
	if err != nil {
		t.Fatal(err)
	}
	if first != merged || merged != hashed {
		t.Fatalf("count diverged: first %d, merge %d, hash %d", first, merged, hashed)
	}
}

// TestSteadyStateJoinCountAllocationFree is the join subsystem's
// allocation gate (matching the conjunctive and grouped precedents):
// with pooled scratch and sequential kernels, a warm hash-join Count
// performs zero heap allocations.
func TestSteadyStateJoinCountAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	lt, rt := joinFixture(t, 8_000, 4_000, 71)
	lr := New(lt, engine.NewScanExecutor(lt, 1), 1)
	rr := New(rt, engine.NewScanExecutor(rt, 1), 1)
	lr.SetJoinStrategy(JoinHash)
	j := lr.Join(rr, "k", "k",
		[]Predicate{{Attr: "v", Lo: 0, Hi: 900}},
		[]Predicate{{Attr: "v", Lo: 100, Hi: 1000}})
	if _, err := j.Count(); err != nil { // warm the pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := j.Count(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("steady-state join Count allocates %.2f times per query, want 0", allocs)
	}
}

// BenchmarkJoinCount measures the runner-level hash-join count path;
// ReportAllocs shows the pooled steady state (the CI allocation-report
// step runs it).
func BenchmarkJoinCount(b *testing.B) {
	for _, threads := range []int{1, 4} {
		lt, rt := joinFixture(b, 1<<17, 1<<15, 81)
		lr := New(lt, engine.NewScanExecutor(lt, threads), threads)
		rr := New(rt, engine.NewScanExecutor(rt, threads), threads)
		j := lr.Join(rr, "k", "k", []Predicate{{Attr: "v", Lo: 0, Hi: 900}}, nil)
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			if _, err := j.Count(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := j.Count(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
