// Grouped aggregation: the query runner's face of internal/groupby.
//
// A grouped query reuses the conjunctive selection pipeline end to end —
// plan, drive, refine, presence-filter — always materializing the
// selection vector as a word-packed bitmap (the grouping accumulators
// consume positions in chunks, and the sort strategy tests cluster
// membership bit by bit), then hands the surviving rows plus the
// update-aware views of every referenced attribute to the grouped
// fused-aggregate kernels. The physical grouping strategy is chosen per
// query from domain statistics and the executor's index state:
//
//   - dense, when the composite key domain bit-packs small
//     (groupby.DenseEligible);
//   - sort (index-clustered), when the single group key has a
//     key-ordered access path (engine.KeyOrderWalker) whose clusters
//     are already refined below the per-cluster accumulator bound and
//     the selection is dense enough to amortize walking the whole
//     index;
//   - hash, otherwise.
//
// Under ModeHolistic the group-by attributes are reported to the
// executor like residual conjuncts (engine.PredicateSink), so they
// enter the daemon's index space: idle-time refinement shrinks their
// clusters and converts hash grouping into sort-based grouping over
// time — grouping is how background cracking pays off beyond selects.
package query

import (
	"fmt"

	"holistic/internal/column"
	"holistic/internal/engine"
	"holistic/internal/groupby"
	"holistic/internal/obs"
)

// sortScanRatio guards the sort strategy against sparse selections: the
// cluster walk visits every index entry while dense/hash touch only
// selected rows, so sort is considered when at least 1/sortScanRatio of
// the position universe is selected.
const sortScanRatio = 4

// SetGroupStrategy pins the physical grouping strategy
// (groupby.StrategyAuto restores per-query selection); safe to call
// concurrently with queries. A forced sort strategy still requires a
// key-ordered access path and falls back to hash when none exists.
func (r *Runner) SetGroupStrategy(s groupby.Strategy) { r.groupStrategy.Store(int32(s)) }

// Grouped answers "select keys..., aggs... where <conjunction> group by
// keys..." with a freshly allocated ordered result table. Zero
// predicates group the whole relation.
func (r *Runner) Grouped(keys []string, aggs []groupby.Agg, preds []Predicate) (*groupby.Result, error) {
	res := &groupby.Result{}
	if err := r.GroupedInto(res, keys, aggs, preds); err != nil {
		return nil, err
	}
	return res, nil
}

// GroupedInto is Grouped writing into a caller-owned result, whose
// storage is reused across calls: the steady-state dense path allocates
// nothing.
func (r *Runner) GroupedInto(res *groupby.Result, keys []string, aggs []groupby.Agg, preds []Predicate) error {
	if err := r.checkGrouped(keys, aggs); err != nil {
		return err
	}
	sc, start := r.begin(obs.KindGrouped)
	err := r.groupedSC(sc, res, keys, aggs, preds)
	var emitted int64
	if err == nil {
		emitted = int64(res.Len())
	}
	r.finish(sc, obs.OpGrouped, start, emitted, err)
	return err
}

// checkGrouped validates a grouped query's shape before any scratch is
// pulled, shared by GroupedInto and ExplainGrouped.
func (r *Runner) checkGrouped(keys []string, aggs []groupby.Agg) error {
	if len(keys) == 0 {
		return fmt.Errorf("query: GroupBy needs at least one attribute")
	}
	if len(aggs) == 0 {
		return fmt.Errorf("query: grouped query needs at least one aggregate")
	}
	for i, k := range keys {
		if r.table.Column(k) == nil {
			return fmt.Errorf("query: unknown attribute %q", k)
		}
		for _, prev := range keys[:i] {
			if prev == k {
				return fmt.Errorf("query: duplicate group-by attribute %q", k)
			}
		}
	}
	for _, a := range aggs {
		if a.Kind != groupby.KindCount && r.table.Column(a.Attr) == nil {
			return fmt.Errorf("query: unknown attribute %q", a.Attr)
		}
	}
	return nil
}

// noteStrategy records the executed physical strategy (grouping or
// join) on the metrics aggregate and the trace.
//
//holistic:noalloc
func (r *Runner) noteStrategy(sc *scratch, s obs.Strat, reason string) {
	if r.met != nil {
		r.met.RecordStrategy(sc.seq, s)
	}
	r.fr.RecordStrategy(uint8(s), sc.seq, sc.fstat[0], sc.fstat[1])
	if tr := sc.trace; tr != nil {
		tr.Strategy = s.String()
		tr.StrategyReason = reason
	}
}

// groupStratOf maps the executed groupby strategy to its telemetry
// constant.
//
//holistic:noalloc
func groupStratOf(s groupby.Strategy) obs.Strat {
	switch s {
	case groupby.StrategyDense:
		return obs.StratGroupDense
	case groupby.StrategySort:
		return obs.StratGroupSort
	default:
		return obs.StratGroupHash
	}
}

func (r *Runner) groupedSC(sc *scratch, res *groupby.Result, keys []string, aggs []groupby.Agg, preds []Predicate) error {
	// The referenced attributes: group keys plus aggregate inputs, each
	// presence-filtered through the snapshot that will also feed the
	// accumulators.
	sc.extras = append(sc.extras[:0], keys...)
	for _, a := range aggs {
		if a.Kind == groupby.KindCount {
			continue
		}
		seen := false
		for _, e := range sc.extras {
			if e == a.Attr {
				seen = true
				break
			}
		}
		if !seen {
			sc.extras = append(sc.extras, a.Attr)
		}
	}

	useBm := false
	live := true
	if len(preds) > 0 {
		empty, err := r.planScratch(sc, preds)
		if err != nil {
			return err
		}
		if empty {
			live = false
		} else {
			if useBm, err = r.runSel(sc, sc.extras, repWantBitmap); err != nil {
				return err
			}
		}
	} else {
		if err := r.selectUniverse(sc, sc.extras); err != nil {
			return err
		}
		useBm = true
		if r.met != nil {
			r.met.RecordRep(obs.RepBitmap)
		}
		if tr := sc.trace; tr != nil {
			tr.Rep = "bitmap"
			tr.RepReason = "no predicates: whole-relation universe selection"
			tr.Scanned = int64(sc.bm.Count())
		}
	}

	// Group-by attributes join the index space like residual conjuncts:
	// the daemon's refinement converts their grouping to the sort
	// strategy over time.
	if sink, ok := r.exec.(engine.PredicateSink); ok {
		for _, k := range keys {
			if err := sink.NotePredicate(k); err != nil {
				return err
			}
		}
	}

	spec := r.groupSpec(sc, keys, aggs)
	if !live {
		return groupby.GroupRows(spec, nil, res)
	}

	forced := groupby.Strategy(r.groupStrategy.Load())
	if useBm {
		if walker, attr, ok := r.chooseSort(sc, spec, keys, forced); ok {
			walked := false
			err := groupby.GroupClusters(spec, sc.bm, func(fn func(vals []int64, rows []uint32)) {
				walked, _ = walker.WalkKeyOrder(attr, fn)
			}, res)
			if err != nil {
				return err
			}
			if walked {
				r.noteStrategy(sc, obs.StratGroupSort, "single key with refined key-ordered clusters over a dense selection")
				return nil
			}
			// The access path declined after probing (should not happen —
			// KeyOrderSpan said ok); regroup through the hash path.
		}
		switch forced {
		case groupby.StrategyDense, groupby.StrategyHash:
			spec.Force = forced
		}
		if err := groupby.GroupBitmap(spec, sc.bm, res); err != nil {
			return err
		}
		r.noteGroupFallback(sc, res.Strategy, forced)
		return nil
	}
	switch forced {
	case groupby.StrategyDense, groupby.StrategyHash:
		spec.Force = forced
	}
	if err := groupby.GroupRows(spec, sc.sel, res); err != nil {
		return err
	}
	r.noteGroupFallback(sc, res.Strategy, forced)
	return nil
}

// noteGroupFallback records the strategy the dense/hash grouping kernels
// actually executed.
//
//holistic:noalloc
func (r *Runner) noteGroupFallback(sc *scratch, executed, forced groupby.Strategy) {
	reason := ""
	switch {
	case forced == groupby.StrategyDense || forced == groupby.StrategyHash:
		reason = "strategy pinned by configuration"
	case executed == groupby.StrategyDense:
		reason = "composite key domain bit-packs into the dense accumulator"
	default:
		reason = "no dense packing; key order not refined enough or selection too sparse"
	}
	r.noteStrategy(sc, groupStratOf(executed), reason)
}

// selectUniverse fills sc.bm with the whole position universe of the
// referenced attributes, presence-filtered per attribute, and records
// their views in sc.views — the selection of a query without
// predicates (whole-relation grouping, unfiltered join sides).
func (r *Runner) selectUniverse(sc *scratch, extras []string) error {
	universe := 0
	for _, attr := range extras {
		w, err := r.view(attr)
		if err != nil {
			return err
		}
		sc.views[attr] = w
		if n := w.Extent(); n > universe {
			universe = n
		}
	}
	sc.bm.Reset(universe)
	sc.bm.SetRange(0, universe)
	for _, attr := range extras {
		sc.views[attr].PresentBitmap(sc.bm)
	}
	return nil
}

// groupSpec assembles the groupby.Spec from pooled scratch: views from
// the selection snapshot, key domains from the cached base bounds
// widened by each view's overlay.
func (r *Runner) groupSpec(sc *scratch, keys []string, aggs []groupby.Agg) *groupby.Spec {
	sc.gkeys = sc.gkeys[:0]
	for _, k := range keys {
		w := sc.views[k]
		lo, hi := r.domain(k)
		lo, hi = w.ExtendBounds(lo, hi)
		sc.gkeys = append(sc.gkeys, groupby.Key{View: w, Lo: lo, Hi: hi})
	}
	sc.gviews = sc.gviews[:0]
	for _, a := range aggs {
		var w column.View
		if a.Kind != groupby.KindCount {
			w = sc.views[a.Attr]
		}
		sc.gviews = append(sc.gviews, w)
	}
	sc.gspec = groupby.Spec{
		Keys:     sc.gkeys,
		Aggs:     aggs,
		AggViews: sc.gviews,
		Threads:  r.threads,
	}
	return &sc.gspec
}

// chooseSort applies the sort-strategy rule: a single group key with a
// key-ordered access path whose current clusters fit the per-cluster
// accumulator, skipped when the dense strategy qualifies (a small packed
// domain groups faster through direct array indexing) or when the
// selection is too sparse to justify walking the whole index. A forced
// sort strategy skips the profitability checks but not the
// availability ones.
func (r *Runner) chooseSort(sc *scratch, spec *groupby.Spec, keys []string, forced groupby.Strategy) (engine.KeyOrderWalker, string, bool) {
	if forced != groupby.StrategyAuto && forced != groupby.StrategySort {
		return nil, "", false
	}
	if len(keys) != 1 {
		return nil, "", false
	}
	walker, ok := r.exec.(engine.KeyOrderWalker)
	if !ok {
		return nil, "", false
	}
	span, ok := walker.KeyOrderSpan(keys[0])
	if ok {
		// The statistics behind the sort-vs-hash choice, captured for
		// the strategy audit event regardless of tracing.
		sc.fstat[0] = span
		sc.fstat[1] = float64(sc.bm.Count())
	}
	if tr := sc.trace; tr != nil && ok {
		tr.SetStat("key_order_span", span)
		tr.SetStat("cluster_slots", float64(groupby.DefaultClusterSlots))
		tr.SetStat("selected_rows", float64(sc.bm.Count()))
		tr.SetStat("position_universe", float64(sc.bm.Len()))
	}
	if !ok || span > float64(groupby.DefaultClusterSlots) {
		return nil, "", false
	}
	if forced == groupby.StrategySort {
		return walker, keys[0], true
	}
	if groupby.DenseEligible(spec.Keys, 0) {
		return nil, "", false
	}
	if sc.bm.Count()*sortScanRatio < sc.bm.Len() {
		return nil, "", false
	}
	return walker, keys[0], true
}

// MinMax answers "select min(attr), max(attr) where <conjunction>"; ok
// is false when no tuple qualifies. A single conjunct on attr itself
// delegates to the mode's native MinMax pushdown; otherwise the extrema
// fold late over the surviving selection vector — off set bits on the
// bitmap path, by positional probes on the position-list path.
func (r *Runner) MinMax(attr string, preds []Predicate) (mn, mx int64, ok bool, err error) {
	if r.table.Column(attr) == nil {
		return 0, 0, false, fmt.Errorf("query: unknown attribute %q", attr)
	}
	sc, start := r.begin(obs.KindMinMax)
	mn, mx, ok, err = r.minMaxSC(sc, attr, preds)
	r.finish(sc, obs.OpMinMax, start, 0, err)
	return mn, mx, ok, err
}

func (r *Runner) minMaxSC(sc *scratch, attr string, preds []Predicate) (mn, mx int64, ok bool, err error) {
	empty, err := r.planScratch(sc, preds)
	if err != nil || empty {
		return 0, 0, false, err
	}
	if len(sc.preds) == 1 && sc.preds[0].Attr == attr {
		r.noteNativeRep(sc, "single conjunct on the probed attribute: native minmax pushdown")
		return r.exec.MinMax(attr, sc.preds[0].Lo, sc.preds[0].Hi)
	}
	extra := [1]string{attr}
	useBm, err := r.runSel(sc, extra[:], repByPolicy)
	if err != nil {
		return 0, 0, false, err
	}
	var n int
	if useBm {
		mn, mx, n = sc.views[attr].MinMaxBitmap(sc.bm)
	} else {
		mn, mx, n = sc.views[attr].MinMaxRows(sc.sel)
	}
	if tr := sc.trace; tr != nil {
		tr.Emitted = int64(n)
	}
	return mn, mx, n > 0, nil
}
