package query

import (
	"math/rand"
	"strings"
	"testing"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/groupby"
	"holistic/internal/join"
	"holistic/internal/obs"
	"holistic/internal/obs/econ"
	"holistic/internal/obs/flight"
)

// conjOracle counts the rows satisfying one conjunct by brute force.
func conjOracle(col []int64, lo, hi int64) int64 {
	var n int64
	for _, v := range col {
		if v >= lo && v < hi {
			n++
		}
	}
	return n
}

// TestExplainDifferentialAllModes: in every executor mode, ExplainCount
// must report per-conjunct estimated and actual selectivities where the
// actuals match the brute-force oracle exactly, plus a representation
// choice with a reason.
func TestExplainDifferentialAllModes(t *testing.T) {
	const domain = 1 << 12
	tab, cols := buildTable(3, 6000, domain, 29)
	colIdx := map[string]int{"a": 0, "b": 1, "c": 2}
	execs := allModeExecutors(t, tab)
	preds := []Predicate{
		{Attr: "a", Lo: 0, Hi: domain / 2},
		{Attr: "b", Lo: domain / 8, Hi: domain},
		{Attr: "c", Lo: domain / 4, Hi: 3 * domain / 4},
	}
	for label, exec := range execs {
		t.Run(label, func(t *testing.T) {
			defer exec.Close()
			r := New(tab, exec, 2)
			r.SetMetrics(obs.NewQueryMetrics())
			tr, n, err := r.ExplainCount(preds)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Kind != obs.KindCount || tr.Mode != exec.Label() {
				t.Fatalf("trace header = %q/%q, want count/%s", tr.Kind, tr.Mode, exec.Label())
			}
			if tr.Result != int64(n) {
				t.Fatalf("trace result %d != count %d", tr.Result, n)
			}
			if len(tr.Conjuncts) != len(preds) {
				t.Fatalf("got %d conjuncts, want %d", len(tr.Conjuncts), len(preds))
			}
			if tr.Rep == "" || tr.RepReason == "" {
				t.Fatalf("missing representation choice: rep=%q reason=%q", tr.Rep, tr.RepReason)
			}
			driving := 0
			for _, c := range tr.Conjuncts {
				if c.EstRows <= 0 {
					t.Errorf("conjunct %s: estimated rows %.1f, want > 0", c.Attr, c.EstRows)
				}
				want := conjOracle(cols[colIdx[c.Attr]], c.Lo, c.Hi)
				if c.ActualRows != want {
					t.Errorf("conjunct %s: actual rows %d, want oracle %d", c.Attr, c.ActualRows, want)
				}
				if c.Driving {
					driving++
					if c.CumRows < 0 {
						t.Errorf("driving conjunct %s has no cumulative count", c.Attr)
					}
				}
			}
			if driving != 1 {
				t.Errorf("got %d driving conjuncts, want exactly 1", driving)
			}
			if s := tr.String(); !strings.Contains(s, "est ") || !strings.Contains(s, "actual ") {
				t.Errorf("rendered trace missing est/actual: %s", s)
			}

			// The single-conjunct form takes the native pushdown.
			tr1, _, err := r.ExplainCount(preds[:1])
			if err != nil {
				t.Fatal(err)
			}
			if tr1.Rep != "native" {
				t.Errorf("single conjunct rep = %q, want native", tr1.Rep)
			}
		})
	}
}

// TestExplainGroupedStrategy: ExplainGrouped reports the executed
// grouping strategy and the reason it was picked, and the metrics
// aggregate records the same strategy.
func TestExplainGroupedStrategy(t *testing.T) {
	tab, _ := buildTable(3, 4000, 1<<12, 31)
	// Key attribute with a tiny domain so the dense path is available.
	keyVals := make([]int64, 4000)
	rng := rand.New(rand.NewSource(7))
	for i := range keyVals {
		keyVals[i] = rng.Int63n(16)
	}
	tab.MustAddColumn(column.New("g", keyVals))
	exec := engine.NewScanExecutor(tab, 2)
	defer exec.Close()
	r := New(tab, exec, 2)
	m := obs.NewQueryMetrics()
	r.SetMetrics(m)
	res := &groupby.Result{}
	tr, err := r.ExplainGrouped(res, []string{"g"}, []groupby.Agg{{Kind: groupby.KindCount}}, []Predicate{{Attr: "a", Lo: 0, Hi: 1 << 11}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Strategy == "" || tr.StrategyReason == "" {
		t.Fatalf("missing strategy: %q (%q)", tr.Strategy, tr.StrategyReason)
	}
	if tr.Result != int64(res.Len()) {
		t.Errorf("trace result %d != groups %d", tr.Result, res.Len())
	}
	snap := m.Snapshot()
	found := false
	for k, v := range snap.Strategies {
		if strings.HasPrefix(k, "groupby/") && v > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("metrics recorded no groupby strategy: %v", snap.Strategies)
	}
}

// TestExplainJoinStrategy: the join Explain carries side-scoped
// conjuncts with oracle-checked actuals and reports hash versus merge
// with a reason; forcing each strategy flips the reported name.
func TestExplainJoinStrategy(t *testing.T) {
	lt, rt := joinFixture(t, 3000, 1<<10, 41)
	for label, force := range map[string]JoinStrategy{"auto": JoinAuto, "hash": JoinHash} {
		t.Run(label, func(t *testing.T) {
			lExec := engine.NewAdaptiveExecutor(lt, cracking.Config{WithRows: true}, "")
			rExec := engine.NewAdaptiveExecutor(rt, cracking.Config{WithRows: true}, "")
			defer lExec.Close()
			defer rExec.Close()
			lr := New(lt, lExec, 2)
			rr := New(rt, rExec, 2)
			lr.SetMetrics(obs.NewQueryMetrics())
			lr.SetJoinStrategy(force)
			lPreds := []Predicate{{Attr: "v", Lo: 0, Hi: 800}}
			rPreds := []Predicate{{Attr: "v", Lo: 100, Hi: 1000}}
			j := lr.Join(rr, "k", "k", lPreds, rPreds)
			tr, n, err := j.Explain()
			if err != nil {
				t.Fatal(err)
			}
			want, _, _ := oracleJoin(lt, rt, lPreds, rPreds, join.Left, "")
			if n != want {
				t.Fatalf("join count %d, want oracle %d", n, want)
			}
			if tr.Strategy != "hash" && tr.Strategy != "merge" {
				t.Fatalf("join strategy %q, want hash or merge", tr.Strategy)
			}
			if force == JoinHash && tr.Strategy != "hash" {
				t.Fatalf("forced hash reported %q", tr.Strategy)
			}
			if tr.StrategyReason == "" {
				t.Fatal("missing strategy reason")
			}
			sides := map[string]bool{}
			for _, c := range tr.Conjuncts {
				sides[c.Side] = true
				var col []int64
				if c.Side == "left" {
					col = lt.Column(c.Attr).Values()
				} else {
					col = rt.Column(c.Attr).Values()
				}
				if wantN := conjOracle(col, c.Lo, c.Hi); c.ActualRows != wantN {
					t.Errorf("%s conjunct %s: actual %d, want %d", c.Side, c.Attr, c.ActualRows, wantN)
				}
			}
			if !sides["left"] || !sides["right"] {
				t.Errorf("conjuncts missing a side: %v", sides)
			}
		})
	}
}

// TestSteadyStateCountMetricsAllocationFree: attaching the metrics
// block must not cost the instrumented Count its zero-allocation
// steady state — the tentpole's recording-overhead criterion.
func TestSteadyStateCountMetricsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts are meaningless")
	}
	const domain = 1 << 16
	tab, _ := buildTable(3, 1<<15, domain, 23)
	r := New(tab, engine.NewScanExecutor(tab, 1), 1)
	r.SetMetrics(obs.NewQueryMetrics())
	preds := []Predicate{
		{Attr: "a", Lo: 0, Hi: domain / 2},
		{Attr: "b", Lo: domain / 4, Hi: domain},
		{Attr: "c", Lo: 0, Hi: 3 * domain / 4},
	}
	if _, err := r.Count(preds); err != nil { // warm pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := r.Count(preds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("instrumented Count allocates %.2f times per query, want 0", allocs)
	}
	if got := r.Metrics().OpHistogram(obs.OpCount).Count(); got < 51 {
		t.Errorf("histogram recorded %d counts, want >= 51", got)
	}
}

// TestTraceSinkReceivesQueries: with a sink attached every terminal
// emits one trace, and detaching stops the flow.
func TestTraceSinkReceivesQueries(t *testing.T) {
	const domain = 1 << 12
	tab, _ := buildTable(2, 2000, domain, 19)
	r := New(tab, engine.NewScanExecutor(tab, 1), 1)
	r.SetMetrics(obs.NewQueryMetrics())
	var sink captureSink
	r.SetTraceSink(&sink)
	preds := []Predicate{
		{Attr: "a", Lo: 0, Hi: domain / 2},
		{Attr: "b", Lo: 0, Hi: domain / 2},
	}
	if _, err := r.Count(preds); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Sum("a", preds); err != nil {
		t.Fatal(err)
	}
	if sink.n != 2 {
		t.Fatalf("sink saw %d traces, want 2", sink.n)
	}
	if sink.lastKind != obs.KindSum {
		t.Fatalf("last trace kind %q, want sum", sink.lastKind)
	}
	r.SetTraceSink(nil)
	if _, err := r.Count(preds); err != nil {
		t.Fatal(err)
	}
	if sink.n != 2 {
		t.Fatalf("detached sink saw %d traces, want 2", sink.n)
	}
}

// captureSink records trace headers; the trace itself is recycled by
// the runner after Emit returns, so nothing may retain it.
type captureSink struct {
	n        int
	lastKind string
	lastSeq  uint64
}

func (s *captureSink) Emit(tr *obs.QueryTrace) {
	s.n++
	s.lastKind = tr.Kind
	s.lastSeq = tr.Seq
}

// TestSteadyStateCountFlightAllocationFree: the flight recorder rides
// the same hot path as the metrics block and must preserve its
// zero-allocation steady state.
func TestSteadyStateCountFlightAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts are meaningless")
	}
	const domain = 1 << 16
	tab, _ := buildTable(3, 1<<15, domain, 23)
	r := New(tab, engine.NewScanExecutor(tab, 1), 1)
	r.SetMetrics(obs.NewQueryMetrics())
	fr := flight.NewRecorder(flight.DefaultEvents)
	r.SetFlight(fr)
	preds := []Predicate{
		{Attr: "a", Lo: 0, Hi: domain / 2},
		{Attr: "b", Lo: domain / 4, Hi: domain},
		{Attr: "c", Lo: 0, Hi: 3 * domain / 4},
	}
	if _, err := r.Count(preds); err != nil { // warm pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := r.Count(preds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("flight-recorded Count allocates %.2f times per query, want 0", allocs)
	}
	// Every query records one EvQuery and one EvRep.
	if got := fr.Head(); got < 2*51 {
		t.Errorf("flight ring recorded %d events, want >= %d", got, 2*51)
	}
}

// TestSteadyStateCountEconAllocationFree: the economics recorder —
// heatmap spans at plan time plus the drive-latency ledger in runSel —
// rides the same hot path as the metrics block and must preserve its
// zero-allocation steady state.
func TestSteadyStateCountEconAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts are meaningless")
	}
	const domain = 1 << 16
	tab, _ := buildTable(3, 1<<15, domain, 23)
	r := New(tab, engine.NewScanExecutor(tab, 1), 1)
	r.SetMetrics(obs.NewQueryMetrics())
	ec := econ.New()
	r.SetEcon(ec)
	preds := []Predicate{
		{Attr: "a", Lo: 0, Hi: domain / 2},
		{Attr: "b", Lo: domain / 4, Hi: domain},
		{Attr: "c", Lo: 0, Hi: 3 * domain / 4},
	}
	if _, err := r.Count(preds); err != nil { // warm pools, intern heatmaps
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := r.Count(preds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("econ-recorded Count allocates %.2f times per query, want 0", allocs)
	}
	snap := ec.Snapshot()
	if len(snap.Access) != 3 {
		t.Fatalf("access heatmaps cover %d attrs, want 3", len(snap.Access))
	}
	for _, hm := range snap.Access {
		if hm.Total < 51 {
			t.Errorf("heatmap %q recorded %d span-bucket hits, want >= 51", hm.Attr, hm.Total)
		}
	}
	// The driving conjunct's ledger saw every query's drive stage.
	var drives int64
	for _, ie := range snap.Indexes {
		drives += ie.DriveQueries
	}
	if drives < 51 {
		t.Errorf("ledger recorded %d drive samples, want >= 51", drives)
	}
}

// BenchmarkConjunctiveCountMetrics pairs the uninstrumented pipeline
// against the same pipeline with the metrics block attached, then with
// the flight recorder on top, then with the economics recorder too:
// each delta is recording overhead the 3% acceptance budget is charged
// to.
func BenchmarkConjunctiveCountMetrics(b *testing.B) {
	for _, variant := range []string{"bare", "metrics", "flight", "econ"} {
		r, preds := benchRunner(b, 1)
		if variant != "bare" {
			r.SetMetrics(obs.NewQueryMetrics())
		}
		if variant == "flight" || variant == "econ" {
			r.SetFlight(flight.NewRecorder(flight.DefaultEvents))
		}
		if variant == "econ" {
			r.SetEcon(econ.New())
		}
		b.Run(variant, func(b *testing.B) {
			if _, err := r.Count(preds); err != nil { // warm pools
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Count(preds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
