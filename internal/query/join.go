// Join execution: the query runner's face of internal/join.
//
// A join runs the conjunctive selection pipeline once per side — plan,
// drive, refine, presence-filter (the join attribute and every payload
// attribute a terminal references are presence-filtered, so NULL rows
// never match) — then hands both selections to the join kernels. The
// physical strategy is chosen per query from each side's filtered
// cardinality and index statistics, mirroring the grouped-aggregation
// subsystem's strategy selection:
//
//   - merge (index-clustered), when both sides have a key-ordered
//     access path on their join attribute (engine.KeyOrderWalker) whose
//     clusters are already refined below the per-pair accumulator
//     bound and whose selections are dense enough to amortize walking
//     the whole index — no hash table over either relation;
//   - hash (radix-partitioned open-addressing), otherwise, with the
//     build side always the smaller filtered cardinality.
//
// Under ModeHolistic the join attributes of both relations are
// reported to their executors (engine.PredicateSink), so they enter
// the daemons' index spaces: idle-time refinement shrinks their
// clusters and converts hash joins into merge joins over time — the
// same convergence grouped aggregation proved, now across relations.
package query

import (
	"fmt"
	"time"

	"holistic/internal/column"
	"holistic/internal/engine"
	"holistic/internal/groupby"
	"holistic/internal/join"
	"holistic/internal/obs"
)

// JoinStrategy pins the physical join strategy of a runner's joins.
type JoinStrategy int32

const (
	// JoinAuto picks per query from cardinality and index statistics.
	JoinAuto JoinStrategy = iota
	// JoinHash forces the radix-partitioned hash join.
	JoinHash
	// JoinMerge forces the index-clustered merge join where a
	// key-ordered access path exists on both sides (hash otherwise).
	JoinMerge
)

// joinScanRatio guards the auto merge strategy against sparse
// selections, mirroring the grouped subsystem's sortScanRatio: the
// cluster walks visit every index entry of both sides, so merge is
// considered only when at least 1/joinScanRatio of each side's
// position universe is selected.
const joinScanRatio = 4

// SetJoinStrategy pins the join strategy of joins driven by this
// runner (the left side); JoinAuto restores per-query selection. Safe
// to call concurrently with queries.
func (r *Runner) SetJoinStrategy(s JoinStrategy) { r.joinStrategy.Store(int32(s)) }

// Join is an equi-join under construction: left ⋈ right on
// leftAttr = rightAttr, each side pre-filtered by its own conjunction
// (nil or empty selects the whole relation). Terminals execute it.
type Join struct {
	left, right         *Runner
	leftAttr, rightAttr string
	leftPreds           []Predicate
	rightPreds          []Predicate

	// count/sum carry the folds of the last execution from runInto to
	// the terminal. They are per-call temporaries: a Join value is not
	// safe for concurrent terminal execution, matching the builder
	// semantics of Query.
	count, sum int64

	// trace, when preset (the Explain path), receives the execution
	// trace instead of the left runner's sink; the caller owns it.
	trace *obs.QueryTrace
}

// SetTrace presets a caller-owned trace the next terminal fills —
// the Explain path. The trace is neither emitted nor recycled.
func (j *Join) SetTrace(tr *obs.QueryTrace) { j.trace = tr }

// Join starts an equi-join between this runner's relation (the left
// side) and another runner's (the right side — possibly the same
// runner, a self-join).
func (r *Runner) Join(right *Runner, leftAttr, rightAttr string, leftPreds, rightPreds []Predicate) *Join {
	return &Join{
		left: r, right: right,
		leftAttr: leftAttr, rightAttr: rightAttr,
		leftPreds: leftPreds, rightPreds: rightPreds,
	}
}

// GroupKey is one group-by attribute of a grouped join terminal: the
// side it lives on and its name there.
type GroupKey struct {
	Side join.Side
	Attr string
}

// GroupAgg is one aggregate of a grouped join terminal; Side says
// which relation Agg.Attr comes from (ignored for count(*)).
type GroupAgg struct {
	Side join.Side
	Agg  groupby.Agg
}

// Count answers "select count(*) from L join R on ...": the number of
// matching pairs. On the hash path this folds per-slot match counts
// through pooled scratch — the steady state allocates nothing.
//
//holistic:noalloc
func (j *Join) Count() (int64, error) {
	count, _, err := j.run(join.Op{Kind: join.OpCount}, nil, nil, nil)
	return count, err
}

// Sum answers "select sum(attr)" over the matching pairs, attr taken
// from the given side (a row matching k rows of the other relation
// contributes its value k times).
func (j *Join) Sum(side join.Side, attr string) (int64, error) {
	sumAttr := [1]string{attr}
	var lExtra, rExtra []string
	if side == join.Left {
		lExtra = sumAttr[:]
	} else {
		rExtra = sumAttr[:]
	}
	_, sum, err := j.run(join.Op{Kind: join.OpSum, SumSide: side}, lExtra, rExtra, nil)
	return sum, err
}

// Pairs materializes the matching (left row id, right row id) pairs
// into freshly allocated slices, in unspecified order.
func (j *Join) Pairs() (left, right []uint32, err error) {
	p := join.GetPairs()
	defer join.PutPairs(p)
	if _, _, err := j.run(join.Op{Kind: join.OpPairs}, nil, nil, p); err != nil {
		return nil, nil, err
	}
	return append([]uint32(nil), p.Left...), append([]uint32(nil), p.Right...), nil
}

// Grouped answers "select keys..., aggs... group by keys..." over the
// matching pairs with a freshly allocated ordered result table.
func (j *Join) Grouped(keys []GroupKey, aggs []GroupAgg) (*groupby.Result, error) {
	res := &groupby.Result{}
	if err := j.GroupedInto(res, keys, aggs); err != nil {
		return nil, err
	}
	return res, nil
}

// GroupedInto is Grouped writing into a caller-owned result whose
// storage is reused across calls.
func (j *Join) GroupedInto(res *groupby.Result, keys []GroupKey, aggs []GroupAgg) error {
	if len(keys) == 0 {
		return fmt.Errorf("query: grouped join needs at least one group-by attribute")
	}
	if len(aggs) == 0 {
		return fmt.Errorf("query: grouped join needs at least one aggregate")
	}
	var lExtra, rExtra []string
	addExtra := func(side join.Side, attr string) {
		lst := &lExtra
		if side == join.Right {
			lst = &rExtra
		}
		for _, e := range *lst {
			if e == attr {
				return
			}
		}
		*lst = append(*lst, attr)
	}
	for _, k := range keys {
		addExtra(k.Side, k.Attr)
	}
	for _, a := range aggs {
		if a.Agg.Kind != groupby.KindCount {
			addExtra(a.Side, a.Agg.Attr)
		}
	}
	p := join.GetPairs()
	defer join.PutPairs(p)
	lsc, rsc, err := j.runInto(join.Op{Kind: join.OpPairs}, lExtra, rExtra, p)
	if lsc != nil {
		defer j.left.putScratch(lsc)
	}
	if rsc != nil {
		defer j.right.putScratch(rsc)
	}
	if err != nil {
		return err
	}
	sideOf := func(side join.Side, attr string) (join.PairCol, [2]int64) {
		r, sc := j.left, lsc
		if side == join.Right {
			r, sc = j.right, rsc
		}
		w := sc.views[attr]
		lo, hi := r.domain(attr)
		lo, hi = w.ExtendBounds(lo, hi)
		return join.PairCol{Side: side, View: w}, [2]int64{lo, hi}
	}
	pkeys := make([]join.PairCol, len(keys))
	bounds := make([][2]int64, len(keys))
	for i, k := range keys {
		pkeys[i], bounds[i] = sideOf(k.Side, k.Attr)
	}
	gaggs := make([]groupby.Agg, len(aggs))
	aggCols := make([]join.PairCol, len(aggs))
	for i, a := range aggs {
		gaggs[i] = a.Agg
		if a.Agg.Kind != groupby.KindCount {
			aggCols[i], _ = sideOf(a.Side, a.Agg.Attr)
		}
	}
	return join.Grouped(p, pkeys, bounds, gaggs, aggCols, res)
}

// run executes the join and releases both sides' scratch before
// returning — usable for the scalar terminals, whose results do not
// reference scratch-held views.
//
//holistic:noalloc
func (j *Join) run(op join.Op, lExtra, rExtra []string, pairs *join.Pairs) (count, sum int64, err error) {
	lsc, rsc, err := j.runInto(op, lExtra, rExtra, pairs)
	if lsc != nil {
		j.left.putScratch(lsc)
	}
	if rsc != nil {
		j.right.putScratch(rsc)
	}
	if err != nil {
		return 0, 0, err
	}
	return j.count, j.sum, nil
}

// runInto executes the join, leaving both sides' scratch (and the
// views the grouped terminal gathers through) alive for the caller to
// release.
//
//holistic:noalloc
func (j *Join) runInto(op join.Op, lExtra, rExtra []string, pairs *join.Pairs) (lsc, rsc *scratch, err error) {
	j.count, j.sum = 0, 0
	if pairs != nil {
		pairs.Left = pairs.Left[:0]
		pairs.Right = pairs.Right[:0]
	}
	if j.left.table.Column(j.leftAttr) == nil {
		return nil, nil, errf("query: unknown join attribute %q", j.leftAttr)
	}
	if j.right.table.Column(j.rightAttr) == nil {
		return nil, nil, errf("query: unknown join attribute %q", j.rightAttr)
	}
	for _, a := range lExtra {
		if j.left.table.Column(a) == nil {
			return nil, nil, errf("query: unknown attribute %q", a)
		}
	}
	for _, a := range rExtra {
		if j.right.table.Column(a) == nil {
			return nil, nil, errf("query: unknown attribute %q", a)
		}
	}

	// Join attributes enter the index space on both sides, like the
	// residual conjuncts and group-by keys before them: the daemons'
	// idle refinement converts hash joins into merge joins over time.
	if sink, ok := j.left.exec.(engine.PredicateSink); ok {
		if err := sink.NotePredicate(j.leftAttr); err != nil {
			return nil, nil, err
		}
	}
	if sink, ok := j.right.exec.(engine.PredicateSink); ok {
		if err := sink.NotePredicate(j.rightAttr); err != nil {
			return nil, nil, err
		}
	}

	lsc = j.left.getScratch()
	rsc = j.right.getScratch()
	start := j.beginJoin(lsc, rsc)
	err = j.joinSC(op, lsc, rsc, lExtra, rExtra, pairs)
	j.finishJoin(lsc, rsc, start, err)
	return lsc, rsc, err
}

// beginJoin opens the instrumented join bracket: sequence number, start
// timestamp and — from the Explain preset or the left runner's sink —
// the trace both sides fill.
//
//holistic:noalloc
func (j *Join) beginJoin(lsc, rsc *scratch) time.Time {
	m := j.left.met
	tr := j.trace // preset by the Explain path; caller-owned
	if m != nil {
		lsc.seq = m.NextSeq()
		rsc.seq = lsc.seq
		if tr == nil {
			if box := j.left.sink.Load(); box != nil {
				tr = obs.GetTrace()
			}
		}
	}
	if tr != nil {
		tr.Seq = lsc.seq
		tr.Kind = obs.KindJoin
		tr.Mode = j.left.exec.Label()
		tr.Rows = j.left.table.Rows()
		tr.RowsRight = j.right.table.Rows()
		lsc.trace = tr
		rsc.trace = tr
	}
	if m == nil && tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// finishJoin closes the bracket: op latency, trace emission, recycling.
//
//holistic:noalloc
func (j *Join) finishJoin(lsc, rsc *scratch, start time.Time, err error) {
	m := j.left.met
	tr := lsc.trace
	lsc.trace, rsc.trace = nil, nil
	if m == nil && tr == nil {
		return
	}
	elapsed := time.Since(start).Nanoseconds()
	if m != nil {
		m.RecordOp(obs.OpJoin, elapsed)
	}
	j.left.fr.RecordQuery(uint8(obs.OpJoin), lsc.seq, elapsed, lsc.driveNs+rsc.driveNs, lsc.refineNs+rsc.refineNs, j.count)
	if tr == nil {
		return
	}
	tr.Result = j.count
	tr.Emitted = j.count
	tr.TotalNanos = elapsed
	if err != nil {
		tr.Err = err.Error()
	}
	if j.trace != nil {
		return // Explain owns the trace: neither emitted nor recycled
	}
	if box := j.left.sink.Load(); box != nil {
		box.s.Emit(tr)
	}
	obs.PutTrace(tr)
}

// joinSC is the join body between begin/finish: per-side selection,
// strategy choice, kernel execution.
//
//holistic:noalloc
func (j *Join) joinSC(op join.Op, lsc, rsc *scratch, lExtra, rExtra []string, pairs *join.Pairs) error {
	if tr := lsc.trace; tr != nil {
		tr.BeginSide("left")
	}
	lLive, lUseBm, err := selectSide(j.left, lsc, j.leftPreds, j.leftAttr, lExtra)
	if err != nil {
		return err
	}
	if !lLive {
		// A provably empty left side joins nothing: skip the right
		// side's selection pass entirely.
		return nil
	}
	if tr := rsc.trace; tr != nil {
		tr.BeginSide("right")
	}
	rLive, rUseBm, err := selectSide(j.right, rsc, j.rightPreds, j.rightAttr, rExtra)
	if err != nil {
		return err
	}
	if !rLive {
		return nil
	}

	mergeReason := "key-ordered clusters refined below the merge span on both sides"
	hashReason := "no refined key-ordered path on both sides, or selections too sparse to walk the indexes"
	if JoinStrategy(j.left.joinStrategy.Load()) != JoinAuto {
		mergeReason = "strategy pinned by configuration"
		hashReason = "strategy pinned by configuration"
	}

	if j.chooseMerge(lsc, rsc, lUseBm, rUseBm) {
		var walkErr error
		mkStream := func(r *Runner, sc *scratch, attr string, sumSide bool) join.Stream {
			w := r.exec.(engine.KeyOrderWalker)
			s := join.Stream{
				Walk: func(fn func(vals []int64, rows []uint32)) bool {
					ok, err := w.WalkKeyOrder(attr, fn)
					if err != nil && walkErr == nil {
						walkErr = err
					}
					return err == nil && ok
				},
				Sel:   sc.bm,
				Count: sc.bm.Count(),
			}
			if sumSide {
				s.Vals = sc.views[sumAttr(op, lExtra, rExtra)]
			}
			return s
		}
		ls := mkStream(j.left, lsc, j.leftAttr, op.Kind == join.OpSum && op.SumSide == join.Left)
		rs := mkStream(j.right, rsc, j.rightAttr, op.Kind == join.OpSum && op.SumSide == join.Right)
		count, sum, ok := join.Merge(op, ls, rs, 0, pairs)
		if walkErr != nil {
			return walkErr
		}
		if ok {
			j.count, j.sum = count, sum
			j.left.noteStrategy(lsc, obs.StratJoinMerge, mergeReason)
			return nil
		}
		// The access path declined after probing (should not happen —
		// KeyOrderSpan said ok); rejoin through the hash path.
	}

	lIn := gatherJoinSide(lsc, j.leftAttr, lUseBm)
	rIn := gatherJoinSide(rsc, j.rightAttr, rUseBm)
	if op.Kind == join.OpSum {
		attr := sumAttr(op, lExtra, rExtra)
		if op.SumSide == join.Left {
			lIn.Vals = lsc.views[attr].GatherRows(lsc.jvals[:0], lIn.Rows)
			lsc.jvals = lIn.Vals
		} else {
			rIn.Vals = rsc.views[attr].GatherRows(rsc.jvals[:0], rIn.Rows)
			rsc.jvals = rIn.Vals
		}
	}
	j.count, j.sum = join.Hash(op, lIn, rIn, j.left.threads, pairs)
	j.left.noteStrategy(lsc, obs.StratJoinHash, hashReason)
	return nil
}

// sumAttr recovers the OpSum attribute from the extras the Sum
// terminal threaded through (exactly one side carries it).
//
//holistic:noalloc
func sumAttr(op join.Op, lExtra, rExtra []string) string {
	if op.SumSide == join.Left {
		return lExtra[0]
	}
	return rExtra[0]
}

// selectSide runs one side's pre-join selection: its conjunction
// through the usual pipeline when predicates exist, the
// presence-filtered universe otherwise. The join attribute and the
// side's payload attributes ride along as extras, so every selected
// row has a value in all of them. live is false when the selection is
// provably empty.
//
//holistic:noalloc
func selectSide(r *Runner, sc *scratch, preds []Predicate, joinAttr string, extra []string) (live, useBm bool, err error) {
	sc.extras = append(sc.extras[:0], joinAttr)
	for _, a := range extra {
		dup := false
		for _, e := range sc.extras {
			if e == a {
				dup = true
				break
			}
		}
		if !dup {
			sc.extras = append(sc.extras, a)
		}
	}
	if len(preds) == 0 {
		if err := r.selectUniverse(sc, sc.extras); err != nil {
			return false, false, err
		}
		return sc.bm.Any(), true, nil
	}
	empty, err := r.planScratch(sc, preds)
	if err != nil {
		return false, false, err
	}
	if empty {
		return false, false, nil
	}
	useBm, err = r.runSel(sc, sc.extras, repWantBitmap)
	if err != nil {
		return false, false, err
	}
	if useBm {
		return sc.bm.Any(), true, nil
	}
	return len(sc.sel) > 0, false, nil
}

// gatherJoinSide materializes one side's selected join keys and rows
// into the side's pooled scratch — the hash join's input form.
//
//holistic:noalloc
func gatherJoinSide(sc *scratch, attr string, useBm bool) join.Input {
	var rows column.PosList
	if useBm {
		rows = sc.bm.AppendPositions(sc.jrows[:0])
		sc.jrows = rows
	} else {
		rows = sc.sel
	}
	keys := sc.views[attr].GatherRows(sc.jkeys[:0], rows)
	sc.jkeys = keys
	return join.Input{Keys: keys, Rows: rows}
}

// chooseMerge applies the join-strategy rule: both sides need a
// key-ordered access path on their join attribute whose current
// clusters fit the per-pair accumulator, and — under JoinAuto — whose
// selections are dense enough to justify walking both indexes end to
// end. A forced merge strategy skips the profitability checks but not
// the availability ones.
//
//holistic:noalloc
func (j *Join) chooseMerge(lsc, rsc *scratch, lUseBm, rUseBm bool) bool {
	forced := JoinStrategy(j.left.joinStrategy.Load())
	if forced == JoinHash {
		return false
	}
	if !lUseBm || !rUseBm {
		return false // merge filters rows through the bitmaps
	}
	sideOK := func(r *Runner, attr string) (float64, bool) {
		w, ok := r.exec.(engine.KeyOrderWalker)
		if !ok {
			return 0, false
		}
		return w.KeyOrderSpan(attr)
	}
	lSpan, lOK := sideOK(j.left, j.leftAttr)
	rSpan, rOK := sideOK(j.right, j.rightAttr)
	if lOK {
		lsc.fstat[0] = lSpan
	}
	if rOK {
		lsc.fstat[1] = rSpan
	}
	if tr := lsc.trace; tr != nil {
		if lOK {
			tr.SetStat("left_key_order_span", lSpan)
		}
		if rOK {
			tr.SetStat("right_key_order_span", rSpan)
		}
		tr.SetStat("merge_span_bound", float64(join.DefaultMergeSpan))
		tr.SetStat("left_selected_rows", float64(lsc.bm.Count()))
		tr.SetStat("right_selected_rows", float64(rsc.bm.Count()))
	}
	if !lOK || !rOK {
		return false
	}
	if forced == JoinMerge {
		return true
	}
	if lSpan > float64(join.DefaultMergeSpan) || rSpan > float64(join.DefaultMergeSpan) {
		return false
	}
	if lsc.bm.Count()*joinScanRatio < lsc.bm.Len() || rsc.bm.Count()*joinScanRatio < rsc.bm.Len() {
		return false
	}
	return true
}
