package query

import (
	"fmt"
	"testing"

	"holistic/internal/engine"
	"holistic/internal/groupby"
)

// benchRunner builds a scan-mode runner over a 2^20-row, 3-attribute
// table (buildTable, shared with the tests): the steady-state
// conjunctive hot path with no index mutation noise, so allocs/op
// isolates the query pipeline itself.
func benchRunner(b *testing.B, threads int) (*Runner, []Predicate) {
	b.Helper()
	const domain = 1 << 20
	tab, _ := buildTable(3, 1<<20, domain, 42)
	r := New(tab, engine.NewScanExecutor(tab, threads), threads)
	preds := []Predicate{
		{Attr: "a", Lo: 0, Hi: domain / 4},      // 25% drives
		{Attr: "b", Lo: domain / 8, Hi: domain}, // ~88%
		{Attr: "c", Lo: 0, Hi: 9 * domain / 10}, // 90%
	}
	return r, preds
}

// BenchmarkConjunctiveCount measures the three-conjunct count pipeline
// per representation. With ReportAllocs the bitmap rows show the
// allocation-free steady state; the poslist rows pay the driving
// materialization.
func BenchmarkConjunctiveCount(b *testing.B) {
	for _, threads := range []int{1, 4} {
		r, preds := benchRunner(b, threads)
		for _, pol := range []struct {
			name string
			p    RepPolicy
		}{{"poslist", RepPosList}, {"bitmap", RepBitmap}, {"auto", RepAuto}} {
			b.Run(fmt.Sprintf("%s/threads=%d", pol.name, threads), func(b *testing.B) {
				r.SetRepPolicy(pol.p)
				if _, err := r.Count(preds); err != nil { // warm pools
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := r.Count(preds); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchGroupedRunner builds a scan-mode runner whose first attribute is
// a small-domain group key, so the dense strategy applies.
func benchGroupedRunner(b *testing.B, threads int) (*Runner, []Predicate) {
	b.Helper()
	const domain = 1 << 20
	tab, _ := buildTable(3, 1<<20, domain, 71)
	keyVals := tab.Column("a").Values()
	for i := range keyVals {
		keyVals[i] %= 97
	}
	r := New(tab, engine.NewScanExecutor(tab, threads), threads)
	preds := []Predicate{
		{Attr: "b", Lo: 0, Hi: domain / 2},
		{Attr: "c", Lo: domain / 8, Hi: domain},
	}
	return r, preds
}

// BenchmarkGroupedCount measures the dense grouped count pipeline: with
// a reused result and pooled scratch the steady state reports 0
// allocs/op (the subsystem's allocation bar, enforced by
// TestSteadyStateGroupedAllocationFree).
func BenchmarkGroupedCount(b *testing.B) {
	for _, threads := range []int{1, 4} {
		r, preds := benchGroupedRunner(b, threads)
		b.Run(fmt.Sprintf("dense/threads=%d", threads), func(b *testing.B) {
			r.SetGroupStrategy(groupby.StrategyDense)
			keys := []string{"a"}
			aggs := []groupby.Agg{groupby.Count()}
			var res groupby.Result
			if err := r.GroupedInto(&res, keys, aggs, preds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.GroupedInto(&res, keys, aggs, preds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupedSum is BenchmarkGroupedCount with the full fused
// aggregate set (count, sum, min, max) and a strategy comparison.
func BenchmarkGroupedSum(b *testing.B) {
	r, preds := benchGroupedRunner(b, 1)
	keys := []string{"a"}
	aggs := []groupby.Agg{groupby.Count(), groupby.Sum("c"), groupby.Min("c"), groupby.Max("c")}
	for _, strat := range []struct {
		name string
		s    groupby.Strategy
	}{{"dense", groupby.StrategyDense}, {"hash", groupby.StrategyHash}} {
		b.Run(strat.name, func(b *testing.B) {
			r.SetGroupStrategy(strat.s)
			var res groupby.Result
			if err := r.GroupedInto(&res, keys, aggs, preds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.GroupedInto(&res, keys, aggs, preds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConjunctiveSum is BenchmarkConjunctiveCount with a late
// aggregate fold over a fourth attribute.
func BenchmarkConjunctiveSum(b *testing.B) {
	r, preds := benchRunner(b, 1)
	for _, pol := range []struct {
		name string
		p    RepPolicy
	}{{"poslist", RepPosList}, {"bitmap", RepBitmap}} {
		b.Run(pol.name, func(b *testing.B) {
			r.SetRepPolicy(pol.p)
			if _, err := r.Sum("c", preds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Sum("c", preds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
