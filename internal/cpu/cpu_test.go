package cpu

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestLoadAccountant(t *testing.T) {
	a := NewLoadAccountant(8)
	if a.Contexts() != 8 {
		t.Errorf("Contexts() = %d, want 8", a.Contexts())
	}
	if a.IdleContexts() != 8 {
		t.Errorf("fresh IdleContexts() = %d, want 8", a.IdleContexts())
	}
	a.Acquire(3)
	if a.IdleContexts() != 5 || a.Active() != 3 {
		t.Errorf("after Acquire(3): idle %d active %d", a.IdleContexts(), a.Active())
	}
	a.Acquire(10) // oversubscribed
	if a.IdleContexts() != 0 {
		t.Errorf("oversubscribed IdleContexts() = %d, want 0", a.IdleContexts())
	}
	a.Release(10)
	a.Release(3)
	if a.IdleContexts() != 8 {
		t.Errorf("after releases IdleContexts() = %d, want 8", a.IdleContexts())
	}
}

func TestLoadAccountantMinimumOneContext(t *testing.T) {
	a := NewLoadAccountant(0)
	if a.Contexts() != 1 {
		t.Errorf("Contexts() = %d, want 1", a.Contexts())
	}
}

func TestLoadAccountantConcurrent(t *testing.T) {
	a := NewLoadAccountant(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Acquire(2)
				a.Release(2)
			}
		}()
	}
	wg.Wait()
	if a.Active() != 0 {
		t.Errorf("Active() = %d after balanced acquire/release", a.Active())
	}
}

const statSample1 = `cpu  100 0 100 800 0 0 0 0 0 0
cpu0 50 0 50 400 0 0 0 0 0 0
cpu1 50 0 50 400 0 0 0 0 0 0
intr 12345
ctxt 6789
`

// cpu0 went busy (idle advanced by only 10 of 110 jiffies => ~91% busy);
// cpu1 stayed idle (idle advanced 100 of 110 => ~9% busy).
const statSample2 = `cpu  210 0 200 910 0 0 0 0 0 0
cpu0 100 0 100 410 0 0 0 0 0 0
cpu1 60 0 50 500 0 0 0 0 0 0
intr 12345
ctxt 6789
`

func TestParseProcStat(t *testing.T) {
	ts, err := parseProcStat(strings.NewReader(statSample1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("parsed %d cpu lines, want 2", len(ts))
	}
	if ts[0].user != 50 || ts[0].idle != 400 {
		t.Errorf("cpu0 = %+v", ts[0])
	}
	if ts[0].total() != 500 {
		t.Errorf("cpu0 total = %d, want 500", ts[0].total())
	}
}

func TestParseProcStatMalformed(t *testing.T) {
	if _, err := parseProcStat(strings.NewReader("cpu0 1 2\n")); err == nil {
		t.Error("short line did not error")
	}
	if _, err := parseProcStat(strings.NewReader("cpu0 a b c d e\n")); err == nil {
		t.Error("non-numeric line did not error")
	}
	ts, err := parseProcStat(strings.NewReader("nothing here\n"))
	if err != nil || len(ts) != 0 {
		t.Errorf("unrelated content: %v, %v", ts, err)
	}
}

func TestProcStatMonitorWindow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stat")
	write := func(content string) {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(statSample1)
	m := &ProcStatMonitor{Path: path, BusyThreshold: 0.5}
	if got := m.Contexts(); got != 2 {
		t.Fatalf("Contexts() = %d, want 2", got)
	}
	if got := m.IdleContexts(); got != 0 {
		t.Errorf("first sample IdleContexts() = %d, want 0 (baseline)", got)
	}
	write(statSample2)
	if got := m.IdleContexts(); got != 1 {
		t.Errorf("second sample IdleContexts() = %d, want 1 (cpu1 idle)", got)
	}
	// No progress at all => both contexts idle.
	if got := m.IdleContexts(); got != 2 {
		t.Errorf("unchanged counters IdleContexts() = %d, want 2", got)
	}
}

func TestProcStatMonitorMissingFile(t *testing.T) {
	m := &ProcStatMonitor{Path: "/nonexistent/stat"}
	if got := m.IdleContexts(); got != 0 {
		t.Errorf("missing file IdleContexts() = %d, want 0", got)
	}
	if got := m.Contexts(); got != 0 {
		t.Errorf("missing file Contexts() = %d, want 0", got)
	}
}

func TestProcStatLive(t *testing.T) {
	if _, err := os.Stat("/proc/stat"); err != nil {
		t.Skip("/proc/stat not available")
	}
	m := NewProcStat()
	if m.Contexts() < 1 {
		t.Error("live /proc/stat reported no contexts")
	}
	// Baseline call must not panic and returns 0.
	if got := m.IdleContexts(); got != 0 {
		t.Errorf("baseline IdleContexts() = %d, want 0", got)
	}
}

func TestFixed(t *testing.T) {
	f := Fixed{Total: 8, Idle: 3}
	if f.Contexts() != 8 || f.IdleContexts() != 3 {
		t.Errorf("Fixed = %d/%d", f.IdleContexts(), f.Contexts())
	}
}
