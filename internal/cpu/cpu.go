// Package cpu provides the CPU-utilization signal that drives holistic
// indexing's tuning cycle (Section 4.2, Figure 2): "the holistic indexing
// thread continuously monitors the CPU load ... when n idle CPU cores are
// detected, n holistic worker threads are activated".
//
// Two implementations of the Monitor interface are provided:
//
//   - ProcStatMonitor reads kernel statistics from /proc/stat, exactly as
//     the paper's implementation does. It needs wall-clock sampling
//     windows (the paper found 1 second gives proper kernel statistics),
//     and it observes the whole machine.
//
//   - LoadAccountant tracks, inside the process, how many of a configured
//     budget of hardware contexts the user-query workload currently
//     occupies. It is deterministic and instantaneous, which lets tests
//     and reduced-scale benchmarks run tuning cycles in milliseconds.
//     This substitution is recorded in DESIGN.md §3: the daemon consumes
//     only the signal "n contexts are idle", which both monitors produce.
package cpu

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Monitor reports how many hardware contexts are available in total and
// how many of them are currently idle.
type Monitor interface {
	// Contexts returns the total number of hardware contexts considered.
	Contexts() int
	// IdleContexts returns how many contexts are currently idle. The
	// holistic daemon activates one worker per idle context.
	IdleContexts() int
}

// LoadAccountant is an in-process Monitor: the query engine acquires
// contexts while executing user queries and releases them when done; the
// remainder of the budget is idle.
type LoadAccountant struct {
	contexts int64
	active   atomic.Int64
}

// NewLoadAccountant returns an accountant with the given context budget
// (typically the number of hardware contexts dedicated to the store).
func NewLoadAccountant(contexts int) *LoadAccountant {
	if contexts < 1 {
		contexts = 1
	}
	return &LoadAccountant{contexts: int64(contexts)}
}

// Acquire marks n contexts as busy with user-query work.
func (a *LoadAccountant) Acquire(n int) { a.active.Add(int64(n)) }

// Release returns n contexts to the idle pool.
func (a *LoadAccountant) Release(n int) { a.active.Add(-int64(n)) }

// Active returns the number of contexts currently in use.
func (a *LoadAccountant) Active() int { return int(a.active.Load()) }

// Contexts implements Monitor.
func (a *LoadAccountant) Contexts() int { return int(a.contexts) }

// IdleContexts implements Monitor.
func (a *LoadAccountant) IdleContexts() int {
	idle := a.contexts - a.active.Load()
	if idle < 0 {
		return 0
	}
	return int(idle)
}

// times holds one CPU line of /proc/stat (all jiffy counters we use).
type times struct {
	user, nice, system, idle, iowait, irq, softirq, steal uint64
}

func (t times) total() uint64 {
	return t.user + t.nice + t.system + t.idle + t.iowait + t.irq + t.softirq + t.steal
}

func (t times) idleAll() uint64 { return t.idle + t.iowait }

// ProcStatMonitor derives idle contexts from kernel statistics, like the
// paper's MonetDB implementation. A context counts as idle when its busy
// fraction since the previous sample is below BusyThreshold.
type ProcStatMonitor struct {
	// Path of the stat file; defaults to /proc/stat.
	Path string
	// BusyThreshold is the utilization above which a context counts as
	// busy. Defaults to 0.5.
	BusyThreshold float64

	mu   sync.Mutex
	prev []times
}

// NewProcStat returns a monitor over /proc/stat.
func NewProcStat() *ProcStatMonitor {
	return &ProcStatMonitor{Path: "/proc/stat", BusyThreshold: 0.5}
}

// Contexts implements Monitor; it returns the number of per-CPU lines in
// the stat file (0 when unreadable).
func (m *ProcStatMonitor) Contexts() int {
	cur, err := m.read()
	if err != nil {
		return 0
	}
	return len(cur)
}

// IdleContexts implements Monitor. The first call establishes a baseline
// and reports 0 idle contexts; subsequent calls report contexts whose
// busy fraction over the sampling window stayed below the threshold.
func (m *ProcStatMonitor) IdleContexts() int {
	cur, err := m.read()
	if err != nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.prev
	m.prev = cur
	if len(prev) != len(cur) {
		return 0 // first sample or CPU hotplug; re-baseline
	}
	threshold := m.BusyThreshold
	if threshold <= 0 {
		threshold = 0.5
	}
	idle := 0
	for i := range cur {
		dTotal := cur[i].total() - prev[i].total()
		if dTotal == 0 {
			idle++
			continue
		}
		dIdle := cur[i].idleAll() - prev[i].idleAll()
		busy := 1 - float64(dIdle)/float64(dTotal)
		if busy < threshold {
			idle++
		}
	}
	return idle
}

func (m *ProcStatMonitor) read() ([]times, error) {
	path := m.Path
	if path == "" {
		path = "/proc/stat"
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseProcStat(f)
}

// parseProcStat extracts the per-CPU lines ("cpu0", "cpu1", ...) from a
// /proc/stat stream, skipping the aggregate "cpu" line.
func parseProcStat(r io.Reader) ([]times, error) {
	var out []times
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "cpu") || strings.HasPrefix(line, "cpu ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("cpu: short stat line %q", line)
		}
		var t times
		dst := []*uint64{&t.user, &t.nice, &t.system, &t.idle, &t.iowait, &t.irq, &t.softirq, &t.steal}
		for i, p := range dst {
			if i+1 >= len(fields) {
				break // older kernels omit trailing counters
			}
			v, err := strconv.ParseUint(fields[i+1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cpu: bad counter in %q: %v", line, err)
			}
			*p = v
		}
		out = append(out, t)
	}
	return out, sc.Err()
}

// Fixed is a Monitor that always reports the same idle count; benchmarks
// use it to pin worker parallelism to a chosen thread distribution (the
// uXwYxZ configurations of Figures 7, 11 and 17).
type Fixed struct {
	Total, Idle int
}

// Contexts implements Monitor.
func (f Fixed) Contexts() int { return f.Total }

// IdleContexts implements Monitor.
func (f Fixed) IdleContexts() int { return f.Idle }
