package tpch

import (
	"reflect"
	"testing"
	"time"
)

func testData(t *testing.T) *Data {
	t.Helper()
	return Generate(2000, 42)
}

func allRunners(t *testing.T, d *Data) []*Runner {
	t.Helper()
	rs := []*Runner{
		NewRunner(d, ModeScan, RunnerConfig{}),
		NewRunner(d, ModePresorted, RunnerConfig{}),
		NewRunner(d, ModeCracking, RunnerConfig{}),
		NewRunner(d, ModeHolistic, RunnerConfig{
			Interval: time.Millisecond, Refinements: 8, Seed: 1, L1Values: 512,
		}),
	}
	rs[1].Prepare("l_shipdate", "l_receiptdate")
	return rs
}

func TestGenerateShape(t *testing.T) {
	d := testData(t)
	if d.Orders.Rows() != 2000 {
		t.Fatalf("orders rows = %d, want 2000", d.Orders.Rows())
	}
	lines := d.Lineitem.Rows()
	if lines < 2000 || lines > 7*2000 {
		t.Fatalf("lineitem rows = %d outside [2000, 14000]", lines)
	}
	if d.LinesPerO < 3 || d.LinesPerO > 5 {
		t.Errorf("lines per order = %f, expected ~4", d.LinesPerO)
	}
	// Date orderings the queries rely on.
	ship := d.Lineitem.Column("l_shipdate").Values()
	receipt := d.Lineitem.Column("l_receiptdate").Values()
	okey := d.Lineitem.Column("l_orderkey").Values()
	odate := d.Orders.Column("o_orderdate").Values()
	for i := range ship {
		if receipt[i] <= ship[i] {
			t.Fatalf("row %d: receiptdate %d <= shipdate %d", i, receipt[i], ship[i])
		}
		if ship[i] <= odate[okey[i]] {
			t.Fatalf("row %d: shipdate %d <= orderdate %d", i, ship[i], odate[okey[i]])
		}
	}
	// Dictionaries decode canonical values.
	if d.Flags.Decode(0) != "R" || d.Status.Decode(0) != "O" {
		t.Error("dictionary codes not canonical")
	}
	if d.Modes.Card() != 7 || d.Prios.Card() != 5 {
		t.Errorf("dict cards = %d/%d, want 7/5", d.Modes.Card(), d.Prios.Card())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(500, 7)
	b := Generate(500, 7)
	av := a.Lineitem.Column("l_shipdate").Values()
	bv := b.Lineitem.Column("l_shipdate").Values()
	if len(av) != len(bv) {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("values differ across identical seeds")
		}
	}
}

func TestQ1AllModesAgree(t *testing.T) {
	d := testData(t)
	rs := allRunners(t, d)
	defer func() {
		for _, r := range rs {
			r.Close()
		}
	}()
	for _, v := range Variants(5, 3) {
		want := rs[0].Q1(v.Q1Delta)
		if len(want) == 0 {
			t.Fatal("scan Q1 returned no groups")
		}
		for _, r := range rs[1:] {
			got := r.Q1(v.Q1Delta)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v Q1(delta=%d) = %+v, want %+v", r.Mode(), v.Q1Delta, got, want)
			}
		}
	}
}

// TestQ1MatchesOracleAllModes is the differential test of the grouped-
// aggregation rewrite: under every execution mode, the subsystem-based
// Q1 must return byte-identical rows to the retained hand-rolled
// oracle, across deltas that cover empty, partial and full selections.
func TestQ1MatchesOracleAllModes(t *testing.T) {
	d := testData(t)
	rs := allRunners(t, d)
	defer func() {
		for _, r := range rs {
			r.Close()
		}
	}()
	deltas := []int64{-1000, 60, 90, 120, 100000}
	for _, v := range Variants(5, 3) {
		deltas = append(deltas, v.Q1Delta)
	}
	for _, r := range rs {
		for _, delta := range deltas {
			want := r.Q1Oracle(delta)
			got := r.Q1(delta)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: Q1(%d) = %+v, oracle %+v", r.Mode(), delta, got, want)
			}
		}
	}
}

func TestQ6AllModesAgree(t *testing.T) {
	d := testData(t)
	rs := allRunners(t, d)
	defer func() {
		for _, r := range rs {
			r.Close()
		}
	}()
	nonzero := false
	for _, v := range Variants(8, 4) {
		want := rs[0].Q6(v.Q6Year, v.Q6Discount, v.Q6Quantity)
		if want > 0 {
			nonzero = true
		}
		for _, r := range rs[1:] {
			if got := r.Q6(v.Q6Year, v.Q6Discount, v.Q6Quantity); got != want {
				t.Fatalf("%v Q6(%d,%d,%d) = %d, want %d",
					r.Mode(), v.Q6Year, v.Q6Discount, v.Q6Quantity, got, want)
			}
		}
	}
	if !nonzero {
		t.Error("every Q6 variant returned zero revenue — generator selectivities broken")
	}
}

func TestQ12AllModesAgree(t *testing.T) {
	d := testData(t)
	rs := allRunners(t, d)
	defer func() {
		for _, r := range rs {
			r.Close()
		}
	}()
	nonzero := false
	for _, v := range Variants(8, 5) {
		want := rs[0].Q12(v.Q12Mode1, v.Q12Mode2, v.Q12Year)
		if len(want) > 0 {
			nonzero = true
		}
		for _, r := range rs[1:] {
			got := r.Q12(v.Q12Mode1, v.Q12Mode2, v.Q12Year)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v Q12(%d,%d,%d) = %+v, want %+v",
					r.Mode(), v.Q12Mode1, v.Q12Mode2, v.Q12Year, got, want)
			}
		}
	}
	if !nonzero {
		t.Error("every Q12 variant returned no groups")
	}
}

// TestQ12MatchesOracleAllModes is the differential test of the join-
// subsystem rewrite: under every execution mode, Q12 must return
// byte-identical rows to the retained hand-rolled oracle.
func TestQ12MatchesOracleAllModes(t *testing.T) {
	d := testData(t)
	rs := allRunners(t, d)
	defer func() {
		for _, r := range rs {
			r.Close()
		}
	}()
	for _, r := range rs {
		for _, v := range Variants(8, 5) {
			want := r.Q12Oracle(v.Q12Mode1, v.Q12Mode2, v.Q12Year)
			got := r.Q12(v.Q12Mode1, v.Q12Mode2, v.Q12Year)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: Q12(%d,%d,%d) = %+v, oracle %+v",
					r.Mode(), v.Q12Mode1, v.Q12Mode2, v.Q12Year, got, want)
			}
		}
		// A year with no qualifying lines must match the oracle's empty
		// result too.
		if got, want := r.Q12(0, 1, 2100), r.Q12Oracle(0, 1, 2100); !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: empty Q12 = %+v, oracle %+v", r.Mode(), got, want)
		}
	}
}

// TestQ3MatchesOracleAllModes checks the three-table join query —
// customer ⋈ orders ⋈ lineitem with group-by and top-k — against the
// hand-rolled oracle in every mode.
func TestQ3MatchesOracleAllModes(t *testing.T) {
	d := testData(t)
	rs := allRunners(t, d)
	defer func() {
		for _, r := range rs {
			r.Close()
		}
	}()
	nonzero := false
	for _, r := range rs {
		for _, v := range Variants(6, 8) {
			want := r.Q3Oracle(v.Q3Segment, v.Q3Day)
			got := r.Q3(v.Q3Segment, v.Q3Day)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: Q3(%d,%d) = %+v, oracle %+v", r.Mode(), v.Q3Segment, v.Q3Day, got, want)
			}
			if len(got) > 0 {
				nonzero = true
			}
			for i := 1; i < len(got); i++ {
				if got[i].Revenue > got[i-1].Revenue {
					t.Fatalf("%v: Q3 rows not revenue-descending", r.Mode())
				}
			}
			if len(got) > 10 {
				t.Fatalf("%v: Q3 returned %d rows, top-k is 10", r.Mode(), len(got))
			}
		}
		// Degenerate cutoffs: no orders qualify / no lines qualify.
		if got := r.Q3(0, 0); got != nil {
			t.Fatalf("%v: Q3 before any order = %+v, want nil", r.Mode(), got)
		}
		if got, want := r.Q3(1, 100000), r.Q3Oracle(1, 100000); !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: late-cutoff Q3 = %+v, oracle %+v", r.Mode(), got, want)
		}
	}
	if !nonzero {
		t.Error("every Q3 variant returned no rows — generator selectivities broken")
	}
}

func TestQ3AllModesAgree(t *testing.T) {
	d := testData(t)
	rs := allRunners(t, d)
	defer func() {
		for _, r := range rs {
			r.Close()
		}
	}()
	for _, v := range Variants(4, 9) {
		want := rs[0].Q3(v.Q3Segment, v.Q3Day)
		for _, r := range rs[1:] {
			got := r.Q3(v.Q3Segment, v.Q3Day)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v Q3(%d,%d) = %+v, want %+v", r.Mode(), v.Q3Segment, v.Q3Day, got, want)
			}
		}
	}
}

func TestQ1Totals(t *testing.T) {
	d := testData(t)
	r := NewRunner(d, ModeScan, RunnerConfig{})
	// With delta=-1000 the cutoff lies beyond every shipdate: all rows
	// qualify and per-group counts must sum to the table cardinality.
	rows := r.Q1(-1000)
	var total int64
	for _, g := range rows {
		total += g.Count
		if g.SumBase < g.SumDisc {
			t.Errorf("group %s/%s: base %d < discounted %d", g.ReturnFlag, g.LineStatus, g.SumBase, g.SumDisc)
		}
		if g.SumCharge < g.SumDisc {
			t.Errorf("group %s/%s: charge below discounted price", g.ReturnFlag, g.LineStatus)
		}
	}
	if total != int64(d.Lineitem.Rows()) {
		t.Fatalf("Q1 total count = %d, want %d", total, d.Lineitem.Rows())
	}
}

func TestPrepareOnlyPresorted(t *testing.T) {
	d := testData(t)
	r := NewRunner(d, ModeScan, RunnerConfig{})
	r.Prepare("l_shipdate")
	if r.PrepareTime != 0 {
		t.Error("Prepare ran for a non-presorted mode")
	}
	rp := NewRunner(d, ModePresorted, RunnerConfig{})
	rp.Prepare("l_shipdate")
	if rp.PrepareTime <= 0 {
		t.Error("Prepare recorded no cost for presorted mode")
	}
}

func TestHolisticRunnerRefinesInBackground(t *testing.T) {
	d := Generate(5000, 9)
	r := NewRunner(d, ModeHolistic, RunnerConfig{
		Interval: time.Millisecond, Refinements: 16, Seed: 2, L1Values: 128,
	})
	defer r.Close()
	r.Q6(1994, 500, 25) // creates the conjunctive shipdate cracker
	c := r.RowCracker("l_shipdate")
	if c == nil {
		t.Fatal("no cracker after Q6")
	}
	deadline := time.After(2 * time.Second)
	for c.Pieces() < 10 {
		select {
		case <-deadline:
			t.Fatalf("daemon refined only %d pieces", c.Pieces())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Queries remain correct while refinement continues.
	scan := NewRunner(d, ModeScan, RunnerConfig{})
	for _, v := range Variants(5, 6) {
		if got, want := r.Q6(v.Q6Year, v.Q6Discount, v.Q6Quantity), scan.Q6(v.Q6Year, v.Q6Discount, v.Q6Quantity); got != want {
			t.Fatalf("Q6 diverged under refinement: %d vs %d", got, want)
		}
	}
}

func TestVariantsWellFormed(t *testing.T) {
	for _, v := range Variants(100, 8) {
		if v.Q1Delta < 60 || v.Q1Delta > 120 {
			t.Fatalf("Q1Delta = %d", v.Q1Delta)
		}
		if v.Q6Year < 1993 || v.Q6Year > 1997 {
			t.Fatalf("Q6Year = %d", v.Q6Year)
		}
		if v.Q6Discount < 200 || v.Q6Discount > 900 {
			t.Fatalf("Q6Discount = %d", v.Q6Discount)
		}
		if v.Q6Quantity != 24 && v.Q6Quantity != 25 {
			t.Fatalf("Q6Quantity = %d", v.Q6Quantity)
		}
		if v.Q12Mode1 == v.Q12Mode2 {
			t.Fatal("Q12 modes equal")
		}
		if v.Q12Mode1 < 0 || v.Q12Mode1 > 6 || v.Q12Mode2 < 0 || v.Q12Mode2 > 6 {
			t.Fatalf("Q12 modes out of range: %d, %d", v.Q12Mode1, v.Q12Mode2)
		}
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		ModeScan: "MonetDB", ModePresorted: "Presorted MonetDB",
		ModeCracking: "Sideways Cracking", ModeHolistic: "Holistic Indexing",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %s", int(m), m.String())
		}
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string")
	}
}

func TestSidewaysCrackerGrowsWithVariants(t *testing.T) {
	d := Generate(3000, 11)
	r := NewRunner(d, ModeCracking, RunnerConfig{})
	defer r.Close()
	if r.Cracker("l_shipdate") != nil {
		t.Fatal("cracker exists before any query")
	}
	prev := 0
	for _, v := range Variants(10, 12) {
		r.Q1(v.Q1Delta)
		c := r.Cracker("l_shipdate")
		if c == nil {
			t.Fatal("no sideways cracker after Q1")
		}
		if c.Pieces() < prev {
			t.Fatalf("pieces shrank: %d -> %d", prev, c.Pieces())
		}
		prev = c.Pieces()
	}
	if prev < 3 {
		t.Fatalf("cracker barely refined: %d pieces after 10 variants", prev)
	}
	names := r.Cracker("l_shipdate").PayloadNames()
	if len(names) != len(sidewaysPayloads["l_shipdate"]) {
		t.Fatalf("payload names = %v", names)
	}
}

// TestConjunctiveQ6Crackers: under the cracking modes Q6 drives its most
// selective conjunct through a rowid cracker that grows with variants,
// and under the holistic mode all three conjunct attributes join the
// index space.
func TestConjunctiveQ6Crackers(t *testing.T) {
	d := Generate(3000, 11)
	r := NewRunner(d, ModeCracking, RunnerConfig{})
	defer r.Close()
	prev := 0
	for _, v := range Variants(10, 12) {
		r.Q6(v.Q6Year, v.Q6Discount, v.Q6Quantity)
		c := r.RowCracker("l_shipdate")
		if c == nil {
			t.Fatal("no rowid cracker after Q6 (shipdate should drive)")
		}
		if c.Pieces() < prev {
			t.Fatalf("pieces shrank: %d -> %d", prev, c.Pieces())
		}
		prev = c.Pieces()
	}
	if prev < 3 {
		t.Fatalf("cracker barely refined: %d pieces after 10 variants", prev)
	}
	// Non-driving conjuncts never built an index under plain cracking.
	if r.RowCracker("l_discount") != nil || r.RowCracker("l_quantity") != nil {
		t.Fatal("plain cracking built indexes for non-driving conjuncts")
	}

	h := NewRunner(d, ModeHolistic, RunnerConfig{Interval: time.Millisecond, Refinements: 4, Seed: 3, L1Values: 256})
	defer h.Close()
	h.Q6(1994, 500, 25)
	for _, attr := range []string{"l_shipdate", "l_discount", "l_quantity"} {
		if h.RowCracker(attr) == nil {
			t.Errorf("holistic mode did not admit %s to the index space", attr)
		}
	}
}

func TestQ6RevenueMatchesManualComputation(t *testing.T) {
	d := Generate(1000, 13)
	r := NewRunner(d, ModeScan, RunnerConfig{})
	ship := d.Lineitem.Column("l_shipdate").Values()
	qty := d.Lineitem.Column("l_quantity").Values()
	ext := d.Lineitem.Column("l_extendedprice").Values()
	disc := d.Lineitem.Column("l_discount").Values()
	year, dv, qv := 1994, int64(500), int64(25)
	var want int64
	for i := range ship {
		if ship[i] >= YearDay(year) && ship[i] < YearDay(year+1) &&
			disc[i] >= dv-100 && disc[i] <= dv+100 && qty[i] < qv {
			want += ext[i] * disc[i] / 10000
		}
	}
	if got := r.Q6(year, dv, qv); got != want {
		t.Fatalf("Q6 = %d, want %d", got, want)
	}
}
