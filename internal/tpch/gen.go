// Package tpch provides the TPC-H substrate of the evaluation (Section
// 5.6): a deterministic, scale-parameterized generator for the LINEITEM
// and ORDERS columns used by queries Q1, Q6 and Q12, a qgen-style
// random-variant generator, and implementations of the three queries over
// each of the paper's four execution modes (plain scans, pre-sorted
// projections, sideways-style cracking, holistic indexing). Q6 runs as
// a real three-predicate conjunction with selectivity-ordered planning
// and late tuple reconstruction (see Runner.Q6).
//
// Representation follows fixed-width column-store practice: dates are day
// numbers since 1992-01-01, money is cents, discount/tax are basis
// points, and the low-cardinality string attributes (return flag, line
// status, ship mode, order priority) are dictionary codes. The generator
// reproduces the TPC-H shapes that matter to these queries — the date
// domains and the shipdate/commitdate/receiptdate orderings — at any
// scale (DESIGN.md §3 records the dbgen substitution).
package tpch

import (
	"math/rand"

	"holistic/internal/column"
	"holistic/internal/engine"
)

// Day numbers are relative to 1992-01-01.
const (
	// DaysPerYear approximates the calendar for date arithmetic; TPC-H
	// predicates are year-granular so this is exact enough for the
	// selectivities that matter.
	DaysPerYear = 365
	// MaxOrderDay is 1998-08-02, the last order date dbgen generates.
	MaxOrderDay = 6*DaysPerYear + 214
	// Q1CutoffBase is 1998-12-01, the anchor of Q1's shipdate predicate.
	Q1CutoffBase = 6*DaysPerYear + 335
)

// YearDay returns the day number of January 1st of a TPC-H year
// (1992..1998).
func YearDay(year int) int64 { return int64(year-1992) * DaysPerYear }

// ShipModes are the seven TPC-H ship modes (Q12 picks pairs of codes).
var ShipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

// Priorities are the five TPC-H order priorities; Q12 counts lines whose
// order is urgent or high (codes 0 and 1) against the rest.
var Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

// Segments are the five TPC-H market segments (Q3 filters customers by
// one of them).
var Segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

// Data is the generated database: the two tables plus the dictionaries
// that decode their string-typed columns.
type Data struct {
	Lineitem *engine.Table
	Orders   *engine.Table
	Customer *engine.Table

	Flags     *column.Dict // l_returnflag: R, A, N
	Status    *column.Dict // l_linestatus: O, F
	Modes     *column.Dict // l_shipmode
	Prios     *column.Dict // o_orderpriority
	Segs      *column.Dict // c_mktsegment
	LinesPerO float64
}

// Generate builds a database with the given number of orders (TPC-H SF 1
// is 1.5M orders; the evaluation scales this down). Each order has 1-7
// lineitems as in dbgen.
func Generate(orders int, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	d := &Data{
		Flags:  column.NewDict(),
		Status: column.NewDict(),
		Modes:  column.NewDict(),
		Prios:  column.NewDict(),
		Segs:   column.NewDict(),
	}
	// Fix dictionary codes in canonical order.
	for _, s := range []string{"R", "A", "N"} {
		d.Flags.Encode(s)
	}
	for _, s := range []string{"O", "F"} {
		d.Status.Encode(s)
	}
	for _, s := range ShipModes {
		d.Modes.Encode(s)
	}
	for _, s := range Priorities {
		d.Prios.Encode(s)
	}
	for _, s := range Segments {
		d.Segs.Encode(s)
	}

	// Customers: dbgen's SF 1 has 150k customers to 1.5M orders, so one
	// customer per ten orders, dense custkeys, one market segment each.
	customers := orders / 10
	if customers < 1 {
		customers = 1
	}
	cCustkey := make([]int64, customers)
	cSegment := make([]int64, customers)
	for c := range cCustkey {
		cCustkey[c] = int64(c)
		cSegment[c] = int64(rng.Intn(len(Segments)))
	}

	oOrderkey := make([]int64, orders)
	oOrderdate := make([]int64, orders)
	oPriority := make([]int64, orders)
	oCustkey := make([]int64, orders)
	oShippriority := make([]int64, orders) // constant 0, as dbgen generates it

	var (
		lOrderkey, lQuantity, lExtended, lDiscount, lTax []int64
		lReturnflag, lLinestatus, lShipmode              []int64
		lShipdate, lCommitdate, lReceiptdate             []int64
	)

	// currentDay for linestatus: dbgen uses 1995-06-17 as the boundary
	// between F (shipped long ago) and O (open) lines.
	currentDay := YearDay(1995) + 167

	for o := 0; o < orders; o++ {
		oOrderkey[o] = int64(o)
		orderDay := rng.Int63n(MaxOrderDay + 1)
		oOrderdate[o] = orderDay
		oPriority[o] = int64(rng.Intn(len(Priorities)))
		oCustkey[o] = int64(rng.Intn(customers))

		lines := 1 + rng.Intn(7)
		for l := 0; l < lines; l++ {
			ship := orderDay + 1 + rng.Int63n(121)
			commit := orderDay + 30 + rng.Int63n(61)
			receipt := ship + 1 + rng.Int63n(30)
			qty := 1 + rng.Int63n(50)
			price := (90000 + rng.Int63n(10_000_000)) / 100 // cents, ~$900..$100k
			disc := rng.Int63n(11) * 100                    // basis points 0..1000 (0..10%)
			tax := rng.Int63n(9) * 100                      // 0..800 bp

			var flag int64
			if receipt <= currentDay {
				// Delivered: R or A with equal probability (dbgen).
				flag = rng.Int63n(2)
			} else {
				flag = 2 // N
			}
			var status int64 // O=0, F=1
			if ship > currentDay {
				status = 0
			} else {
				status = 1
			}

			lOrderkey = append(lOrderkey, int64(o))
			lQuantity = append(lQuantity, qty)
			lExtended = append(lExtended, qty*price)
			lDiscount = append(lDiscount, disc)
			lTax = append(lTax, tax)
			lReturnflag = append(lReturnflag, flag)
			lLinestatus = append(lLinestatus, status)
			lShipmode = append(lShipmode, int64(rng.Intn(len(ShipModes))))
			lShipdate = append(lShipdate, ship)
			lCommitdate = append(lCommitdate, commit)
			lReceiptdate = append(lReceiptdate, receipt)
		}
	}

	ordersT := engine.NewTable("orders")
	ordersT.MustAddColumn(column.New("o_orderkey", oOrderkey))
	ordersT.MustAddColumn(column.New("o_orderdate", oOrderdate))
	ordersT.MustAddColumn(column.New("o_orderpriority", oPriority))
	ordersT.MustAddColumn(column.New("o_custkey", oCustkey))
	ordersT.MustAddColumn(column.New("o_shippriority", oShippriority))

	custT := engine.NewTable("customer")
	custT.MustAddColumn(column.New("c_custkey", cCustkey))
	custT.MustAddColumn(column.New("c_mktsegment", cSegment))

	li := engine.NewTable("lineitem")
	li.MustAddColumn(column.New("l_orderkey", lOrderkey))
	li.MustAddColumn(column.New("l_quantity", lQuantity))
	li.MustAddColumn(column.New("l_extendedprice", lExtended))
	li.MustAddColumn(column.New("l_discount", lDiscount))
	li.MustAddColumn(column.New("l_tax", lTax))
	li.MustAddColumn(column.New("l_returnflag", lReturnflag))
	li.MustAddColumn(column.New("l_linestatus", lLinestatus))
	li.MustAddColumn(column.New("l_shipmode", lShipmode))
	li.MustAddColumn(column.New("l_shipdate", lShipdate))
	li.MustAddColumn(column.New("l_commitdate", lCommitdate))
	li.MustAddColumn(column.New("l_receiptdate", lReceiptdate))

	d.Lineitem = li
	d.Orders = ordersT
	d.Customer = custT
	if orders > 0 {
		d.LinesPerO = float64(li.Rows()) / float64(orders)
	}
	return d
}

// QueryVariant is one random instantiation of a TPC-H query template, as
// produced by the benchmark's qgen.
type QueryVariant struct {
	// Q1: DELTA days subtracted from 1998-12-01.
	Q1Delta int64
	// Q6: year (1993..1997), discount in basis points (200..900),
	// quantity threshold (24 or 25).
	Q6Year     int
	Q6Discount int64
	Q6Quantity int64
	// Q12: two distinct shipmode codes and a year (1993..1997).
	Q12Mode1, Q12Mode2 int64
	Q12Year            int
	// Q3: a market-segment code and a cutoff day (orders before it,
	// shipments after it — qgen draws dates in March 1995).
	Q3Segment int64
	Q3Day     int64
}

// Variants generates n qgen-style random parameter sets.
func Variants(n int, seed int64) []QueryVariant {
	rng := rand.New(rand.NewSource(seed))
	out := make([]QueryVariant, n)
	for i := range out {
		m1 := int64(rng.Intn(len(ShipModes)))
		m2 := int64(rng.Intn(len(ShipModes) - 1))
		if m2 >= m1 {
			m2++
		}
		out[i] = QueryVariant{
			Q1Delta:    60 + rng.Int63n(61),
			Q6Year:     1993 + rng.Intn(5),
			Q6Discount: 200 + rng.Int63n(8)*100,
			Q6Quantity: 24 + rng.Int63n(2),
			Q12Mode1:   m1,
			Q12Mode2:   m2,
			Q12Year:    1993 + rng.Intn(5),
			Q3Segment:  int64(rng.Intn(len(Segments))),
			Q3Day:      YearDay(1995) + 59 + rng.Int63n(31), // March 1995
		}
	}
	return out
}
