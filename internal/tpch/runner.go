package tpch

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"holistic/internal/column"
	"holistic/internal/cpu"
	"holistic/internal/cracking"
	"holistic/internal/groupby"
	"holistic/internal/holistic"
	"holistic/internal/join"
	"holistic/internal/stats"
)

// Mode is one of the four execution strategies of Figure 14.
type Mode int

const (
	// ModeScan is plain MonetDB: full-column scans.
	ModeScan Mode = iota
	// ModePresorted is offline indexing: a copy of LINEITEM re-sorted on
	// the query's predicate attribute ("the perfect projection").
	ModePresorted
	// ModeCracking is sideways cracking: the predicate attribute is
	// cracked with the projected attributes attached as payload columns,
	// so qualifying tuples of every needed attribute sit in one
	// contiguous block (self-organizing tuple reconstruction, [29]).
	ModeCracking
	// ModeHolistic is ModeCracking plus the holistic daemon refining the
	// crackers in the background.
	ModeHolistic
)

// String names the mode as Figure 14's legend does.
func (m Mode) String() string {
	switch m {
	case ModeScan:
		return "MonetDB"
	case ModePresorted:
		return "Presorted MonetDB"
	case ModeCracking:
		return "Sideways Cracking"
	case ModeHolistic:
		return "Holistic Indexing"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// projection is a copy of the LINEITEM columns re-ordered by one sort
// attribute: the "column-store projection" offline indexing builds.
type projection struct {
	sortKey []int64
	cols    map[string][]int64
}

// Runner executes the three TPC-H queries under one mode.
type Runner struct {
	data *Data
	mode Mode

	// Columns the queries read, cached as raw slices.
	li   map[string][]int64
	ord  map[string][]int64
	cust map[string][]int64
	// prio[l_orderkey] is the order's priority code (dense positional
	// join index: o_orderkey is the dense 0..N-1 key the generator
	// produces, as in dbgen). Used by the hand-rolled Q12 oracle.
	prio []int64
	// prioHi[order row] is 1 when the order's priority is urgent or
	// high — the derived flag the subsystem-based Q12 sums per group.
	prioHi []int64
	// ordRows holds the identity row ids 0..N-1 shared by every join
	// input built over in-place relations (read-only, prefix-sliced).
	ordRows []uint32

	mu       sync.Mutex
	proj     map[string]*projection
	crackers map[string]*cracking.Column
	// rowCrackers are plain rowid-carrying crackers (no payloads), one
	// per conjunct attribute of Q6: the access paths of the conjunctive
	// select→probe→fetch pipeline. Keyed by attribute; registered with
	// the daemon under "<attr>.rows" to coexist with the sideways
	// crackers.
	rowCrackers map[string]*cracking.Column
	// domains caches raw-slice min/max per attribute for the uniform
	// selectivity estimates of the Q6 planner.
	domains map[string][2]int64
	threads int

	reg    *stats.Registry
	daemon *holistic.Daemon
	acct   *cpu.LoadAccountant

	// PrepareTime records how long Prepare spent building projections
	// (the pre-sorting cost Figure 14 reports separately: "8 sec").
	PrepareTime time.Duration
}

// RunnerConfig tunes the holistic mode.
type RunnerConfig struct {
	// Interval, Refinements, Seed configure the daemon (holistic mode).
	Interval    time.Duration
	Refinements int
	Seed        int64
	// L1Values is the optimal piece size for the daemon.
	L1Values int
	// Contexts is the load accountant budget (holistic mode).
	Contexts int
}

// NewRunner builds a runner. For ModeHolistic the daemon starts
// immediately; for ModePresorted call Prepare before querying (or the
// first query pays it lazily).
func NewRunner(data *Data, mode Mode, cfg RunnerConfig) *Runner {
	r := &Runner{
		data:        data,
		mode:        mode,
		li:          make(map[string][]int64),
		ord:         make(map[string][]int64),
		cust:        make(map[string][]int64),
		proj:        make(map[string]*projection),
		crackers:    make(map[string]*cracking.Column),
		rowCrackers: make(map[string]*cracking.Column),
		domains:     make(map[string][2]int64),
		threads:     cfg.Contexts,
	}
	if r.threads < 1 {
		r.threads = 1
	}
	for _, name := range data.Lineitem.ColumnNames() {
		r.li[name] = data.Lineitem.Column(name).Values()
	}
	for _, name := range data.Orders.ColumnNames() {
		r.ord[name] = data.Orders.Column(name).Values()
	}
	for _, name := range data.Customer.ColumnNames() {
		r.cust[name] = data.Customer.Column(name).Values()
	}
	// Materialized derived columns for the grouped-aggregation form of
	// Q1: discounted price and charge, computed once with exactly the
	// fixed-point arithmetic of the hand-rolled oracle (q1acc.add), so
	// the subsystem's sums are byte-identical to the oracle's. They join
	// r.li like base attributes: pre-sorted projections reorder them and
	// the shipdate sideways cracker drags them as payloads.
	ext, disc, tax := r.li["l_extendedprice"], r.li["l_discount"], r.li["l_tax"]
	dp := make([]int64, len(ext))
	charge := make([]int64, len(ext))
	for i := range ext {
		dp[i] = ext[i] * (10000 - disc[i]) / 10000
		charge[i] = dp[i] * (10000 + tax[i]) / 10000
	}
	r.li["l_discprice"] = dp
	r.li["l_charge"] = charge
	okeys := data.Orders.Column("o_orderkey").Values()
	prios := data.Orders.Column("o_orderpriority").Values()
	r.prio = make([]int64, len(okeys))
	for i, k := range okeys {
		r.prio[k] = prios[i]
	}
	r.prioHi = make([]int64, len(prios))
	for i, p := range prios {
		if p <= 1 {
			r.prioHi[i] = 1
		}
	}
	r.ordRows = identityRows(len(okeys))
	if mode == ModeHolistic {
		if cfg.Contexts < 1 {
			cfg.Contexts = 2
		}
		if cfg.Interval <= 0 {
			cfg.Interval = 10 * time.Millisecond
		}
		r.reg = stats.NewRegistry(cfg.L1Values, cfg.Seed)
		r.acct = cpu.NewLoadAccountant(cfg.Contexts)
		r.daemon = holistic.New(r.reg, r.acct, holistic.Config{
			Interval:    cfg.Interval,
			Refinements: cfg.Refinements,
			Seed:        cfg.Seed,
		})
		r.daemon.Start()
	}
	return r
}

// Close stops the daemon (holistic mode).
func (r *Runner) Close() {
	if r.daemon != nil {
		r.daemon.Stop()
	}
}

// Mode returns the runner's execution mode.
func (r *Runner) Mode() Mode { return r.mode }

// Prepare builds the pre-sorted projections (ModePresorted only): one
// copy of LINEITEM sorted on each of the given attributes. Its cost is
// recorded in PrepareTime.
func (r *Runner) Prepare(sortAttrs ...string) {
	if r.mode != ModePresorted {
		return
	}
	start := time.Now()
	for _, attr := range sortAttrs {
		r.projection(attr)
	}
	r.PrepareTime = time.Since(start)
}

func (r *Runner) projection(attr string) *projection {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.proj[attr]; ok {
		return p
	}
	key := r.li[attr]
	perm := make([]int, len(key))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return key[perm[a]] < key[perm[b]] })
	p := &projection{cols: make(map[string][]int64)}
	p.sortKey = make([]int64, len(key))
	for i, src := range perm {
		p.sortKey[i] = key[src]
	}
	for name, vals := range r.li {
		if name == attr {
			p.cols[name] = p.sortKey
			continue
		}
		re := make([]int64, len(vals))
		for i, src := range perm {
			re[i] = vals[src]
		}
		p.cols[name] = re
	}
	r.proj[attr] = p
	return p
}

// sidewaysPayloads maps each predicate attribute to the LINEITEM
// attributes the three queries project through it: the payload set of its
// sideways cracker (self-organizing tuple reconstruction, [29]).
var sidewaysPayloads = map[string][]string{
	"l_shipdate":    {"l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus", "l_discprice", "l_charge", "l_orderkey"},
	"l_receiptdate": {"l_shipmode", "l_commitdate", "l_shipdate", "l_orderkey"},
}

// identityRows returns the row ids 0..n-1 — the Rows of a join input
// built over a relation scanned in place.
func identityRows(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

// cracker returns (building if needed) the sideways cracker column on
// attr; in holistic mode new crackers join the daemon's index space.
func (r *Runner) cracker(attr string) *cracking.Column {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.crackers[attr]; ok {
		return c
	}
	names := sidewaysPayloads[attr]
	cols := make([][]int64, len(names))
	for i, n := range names {
		cols[i] = r.li[n]
	}
	c := cracking.NewSideways(attr, r.li[attr], names, cols, cracking.Config{Seed: int64(len(r.crackers))})
	r.crackers[attr] = c
	if r.reg != nil {
		r.reg.Add(attr, c, false)
	}
	return c
}

// Cracker exposes the cracker column for telemetry (nil before first use).
func (r *Runner) Cracker(attr string) *cracking.Column {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crackers[attr]
}

// selectPayloads streams the qualifying tuples (select values plus the
// attr's payload columns, position-aligned) under the cracking modes,
// recording statistics in holistic mode.
func (r *Runner) selectPayloads(attr string, lo, hi int64, fn func(vals []int64, payloads [][]int64)) {
	c := r.cracker(attr)
	if r.acct != nil {
		r.acct.Acquire(1)
		defer r.acct.Release(1)
	}
	rg := c.SelectPayloads(lo, hi, fn)
	if r.reg != nil {
		r.reg.RecordAccess(attr, rg.ExactHit())
	}
}

// Q1Row is one group of the Q1 pricing summary report.
type Q1Row struct {
	ReturnFlag string
	LineStatus string
	SumQty     int64
	SumBase    int64 // cents
	SumDisc    int64 // cents, extprice*(1-discount)
	SumCharge  int64 // cents, extprice*(1-discount)*(1+tax)
	Count      int64
}

// q1acc accumulates one group.
type q1acc struct{ qty, base, disc, charge, count int64 }

func (a *q1acc) add(qty, ext, disc, tax int64) {
	a.qty += qty
	a.base += ext
	dp := ext * (10000 - disc) / 10000
	a.disc += dp
	a.charge += dp * (10000 + tax) / 10000
	a.count++
}

// Q1 runs the pricing summary report: lines with
// l_shipdate <= 1998-12-01 - delta days, grouped by returnflag and
// linestatus. It executes on the grouped-aggregation subsystem
// (internal/groupby): one fused multi-aggregate plan — four sums and a
// count in a single pass — over the composite (returnflag, linestatus)
// key, with the qualifying rows delivered by the mode's access path: a
// parallel bitmap scan (MonetDB), the pre-sorted projection's
// contiguous window (presorted), or the sideways cracker's payload
// segments streamed straight into a slice-fed accumulator (cracking and
// holistic). The retained hand-rolled loops (Q1Oracle) serve as the
// differential oracle: both must return byte-identical rows.
func (r *Runner) Q1(delta int64) []Q1Row {
	cutoff := Q1CutoffBase - delta // shipdate <= cutoff, i.e. < cutoff+1
	keys := r.q1Keys()
	aggs := []groupby.Agg{
		groupby.Sum("l_quantity"), groupby.Sum("l_extendedprice"),
		groupby.Sum("l_discprice"), groupby.Sum("l_charge"), groupby.Count(),
	}
	var res groupby.Result
	switch r.mode {
	case ModeScan:
		bm := column.GetBitmap(0)
		defer column.PutBitmap(bm)
		column.ParallelScanRangeBitmap(r.li["l_shipdate"], math.MinInt64, cutoff+1, bm, r.threads)
		spec := r.q1Spec(keys, aggs, r.li)
		if err := groupby.GroupBitmap(spec, bm, &res); err != nil {
			panic(err)
		}
	case ModePresorted:
		p := r.projection("l_shipdate")
		end := sort.Search(len(p.sortKey), func(i int) bool { return p.sortKey[i] > cutoff })
		bm := column.GetBitmap(len(p.sortKey))
		defer column.PutBitmap(bm)
		bm.SetRange(0, end)
		spec := r.q1Spec(keys, aggs, p.cols)
		if err := groupby.GroupBitmap(spec, bm, &res); err != nil {
			panic(err)
		}
	case ModeCracking, ModeHolistic:
		acc, err := groupby.NewAcc(keys, aggs)
		if err != nil {
			panic(err)
		}
		// Payload order: qty, ext, disc, tax, flag, status, discprice,
		// charge (sidewaysPayloads); the fused plan reads five of them.
		r.selectPayloads("l_shipdate", 0, cutoff+1, func(_ []int64, pl [][]int64) {
			acc.Segment([][]int64{pl[4], pl[5]}, [][]int64{pl[0], pl[1], pl[6], pl[7], nil})
		})
		if err := acc.Finish(&res); err != nil {
			panic(err)
		}
	}
	out := make([]Q1Row, 0, res.Len())
	for g := 0; g < res.Len(); g++ {
		out = append(out, Q1Row{
			ReturnFlag: r.data.Flags.Decode(res.Keys[0][g]),
			LineStatus: r.data.Status.Decode(res.Keys[1][g]),
			SumQty:     res.Aggs[0][g],
			SumBase:    res.Aggs[1][g],
			SumDisc:    res.Aggs[2][g],
			SumCharge:  res.Aggs[3][g],
			Count:      res.Aggs[4][g],
		})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// q1Keys builds the composite grouping key of Q1 — (returnflag,
// linestatus), most significant first, with exact dictionary-code
// domains — matching the flag*2+status group enumeration of the oracle.
func (r *Runner) q1Keys() []groupby.Key {
	fLo, fHi := r.attrDomain("l_returnflag")
	sLo, sHi := r.attrDomain("l_linestatus")
	return []groupby.Key{{Lo: fLo, Hi: fHi}, {Lo: sLo, Hi: sHi}}
}

// q1Spec assembles the selection-vector spec of Q1 over the given
// column set (base slices, or a projection's reordered copies).
func (r *Runner) q1Spec(keys []groupby.Key, aggs []groupby.Agg, cols map[string][]int64) *groupby.Spec {
	keys[0].View = column.View{Base: cols["l_returnflag"]}
	keys[1].View = column.View{Base: cols["l_linestatus"]}
	return &groupby.Spec{
		Keys: keys,
		Aggs: aggs,
		AggViews: []column.View{
			{Base: cols["l_quantity"]}, {Base: cols["l_extendedprice"]},
			{Base: cols["l_discprice"]}, {Base: cols["l_charge"]}, {},
		},
		Threads: r.threads,
	}
}

// Q1Oracle is the original hand-rolled Q1: per-mode tight loops over a
// fixed 6-slot group array. Retained as the differential oracle for the
// grouped-aggregation subsystem — TestQ1MatchesOracleAllModes asserts
// Q1 and Q1Oracle return byte-identical rows in every mode.
func (r *Runner) Q1Oracle(delta int64) []Q1Row {
	cutoff := Q1CutoffBase - delta // shipdate <= cutoff, i.e. < cutoff+1
	var groups [6]q1acc

	ship := r.li["l_shipdate"]
	qty := r.li["l_quantity"]
	ext := r.li["l_extendedprice"]
	disc := r.li["l_discount"]
	tax := r.li["l_tax"]
	flag := r.li["l_returnflag"]
	status := r.li["l_linestatus"]

	switch r.mode {
	case ModeScan:
		for i, s := range ship {
			if s <= cutoff {
				g := flag[i]*2 + status[i]
				groups[g].add(qty[i], ext[i], disc[i], tax[i])
			}
		}
	case ModePresorted:
		p := r.projection("l_shipdate")
		end := sort.Search(len(p.sortKey), func(i int) bool { return p.sortKey[i] > cutoff })
		pq, pe, pd, pt := p.cols["l_quantity"], p.cols["l_extendedprice"], p.cols["l_discount"], p.cols["l_tax"]
		pf, ps := p.cols["l_returnflag"], p.cols["l_linestatus"]
		for i := 0; i < end; i++ {
			g := pf[i]*2 + ps[i]
			groups[g].add(pq[i], pe[i], pd[i], pt[i])
		}
	case ModeCracking, ModeHolistic:
		// Sideways payloads arrive position-aligned with the cracked
		// values: qty, ext, disc, tax, flag, status.
		r.selectPayloads("l_shipdate", 0, cutoff+1, func(_ []int64, pl [][]int64) {
			pq, pe, pd, pt, pf, ps := pl[0], pl[1], pl[2], pl[3], pl[4], pl[5]
			for i := range pq {
				g := pf[i]*2 + ps[i]
				groups[g].add(pq[i], pe[i], pd[i], pt[i])
			}
		})
	}

	var out []Q1Row
	for g, acc := range groups {
		if acc.count == 0 {
			continue
		}
		out = append(out, Q1Row{
			ReturnFlag: r.data.Flags.Decode(int64(g / 2)),
			LineStatus: r.data.Status.Decode(int64(g % 2)),
			SumQty:     acc.qty,
			SumBase:    acc.base,
			SumDisc:    acc.disc,
			SumCharge:  acc.charge,
			Count:      acc.count,
		})
	}
	return out
}

// conjPred is one range conjunct over a LINEITEM attribute: lo <= attr
// < hi.
type conjPred struct {
	attr   string
	lo, hi int64
}

// attrDomain caches the min/max of one raw column for the uniform
// selectivity estimates of the Q6 planner.
func (r *Runner) attrDomain(attr string) (lo, hi int64) {
	r.mu.Lock()
	d, ok := r.domains[attr]
	r.mu.Unlock()
	if ok {
		return d[0], d[1]
	}
	lo, hi = column.Bounds(r.li[attr])
	r.mu.Lock()
	r.domains[attr] = [2]int64{lo, hi}
	r.mu.Unlock()
	return lo, hi
}

// planConj orders the conjuncts most selective first under a uniform
// estimate over each attribute's observed domain.
func (r *Runner) planConj(preds []conjPred) []conjPred {
	ests := make([]float64, len(preds))
	for i, p := range preds {
		dLo, dHi := r.attrDomain(p.attr)
		ests[i] = column.UniformEstimate(1, dLo, dHi, p.lo, p.hi)
	}
	idx := make([]int, len(preds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ests[idx[a]] < ests[idx[b]] })
	out := make([]conjPred, len(preds))
	for i, j := range idx {
		out[i] = preds[j]
	}
	return out
}

// rowCracker returns (building if needed) the plain rowid-carrying
// cracker on attr used by the conjunctive Q6 pipeline; under the
// holistic mode it joins the daemon's index space as "<attr>.rows".
func (r *Runner) rowCracker(attr string) *cracking.Column {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.rowCrackers[attr]; ok {
		return c
	}
	c := cracking.New(attr, r.li[attr], cracking.Config{WithRows: true, Seed: int64(len(r.rowCrackers))})
	r.rowCrackers[attr] = c
	if r.reg != nil {
		r.reg.Add(attr+".rows", c, false)
	}
	return c
}

// RowCracker exposes the conjunctive cracker for telemetry (nil before
// first use).
func (r *Runner) RowCracker(attr string) *cracking.Column {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rowCrackers[attr]
}

// Q6 runs the forecasting revenue change query: sum(extprice * discount)
// over lines shipped in `year` with discount within ±1% of `discount`
// (basis points) and quantity < `quantity`. Revenue is returned in
// cents.
//
// Q6 is a real three-predicate conjunction over l_shipdate, l_discount
// and l_quantity, evaluated with the select→probe→fetch pipeline of the
// query subsystem: the planner orders the conjuncts by estimated
// selectivity, the most selective one runs through the mode's access
// path (scan / sorted projection / rowid cracker), the remaining
// conjuncts refine the candidate positions by positional probes, and
// the revenue attributes are fetched late. Under the holistic mode
// every conjunct attribute is admitted to the daemon's index space, so
// background refinement spreads across all three columns.
func (r *Runner) Q6(year int, discount, quantity int64) int64 {
	loDay, hiDay := YearDay(year), YearDay(year+1)
	dLo, dHi := discount-100, discount+100
	preds := []conjPred{
		{"l_shipdate", loDay, hiDay},
		{"l_discount", dLo, dHi + 1},
		{"l_quantity", 0, quantity},
	}
	plan := r.planConj(preds)

	var sel column.PosList
	residual := plan[1:]
	var ext, disc []int64
	switch r.mode {
	case ModeScan:
		d := plan[0]
		sel = column.ParallelScanRange(r.li[d.attr], d.lo, d.hi, r.threads)
		ext, disc = r.li["l_extendedprice"], r.li["l_discount"]
	case ModePresorted:
		// The pre-sorted projection is ordered on l_shipdate, so that
		// conjunct drives via binary search regardless of plan order;
		// the others probe the projection's aligned columns. Positions
		// are projection positions, not base row ids. The first probe
		// runs fused over the contiguous window, so no identity
		// position list is ever materialized.
		p := r.projection("l_shipdate")
		start := sort.Search(len(p.sortKey), func(i int) bool { return p.sortKey[i] >= loDay })
		end := sort.Search(len(p.sortKey), func(i int) bool { return p.sortKey[i] >= hiDay })
		var rest []conjPred
		for _, q := range plan {
			if q.attr != "l_shipdate" {
				rest = append(rest, q)
			}
		}
		residual = nil
		if len(rest) == 0 {
			sel = make(column.PosList, 0, end-start)
			for i := start; i < end; i++ {
				sel = append(sel, column.Pos(i))
			}
		} else {
			first := rest[0]
			vals := p.cols[first.attr]
			sel = make(column.PosList, 0, (end-start)/4+1)
			for i := start; i < end; i++ {
				if v := vals[i]; v >= first.lo && v < first.hi {
					sel = append(sel, column.Pos(i))
				}
			}
			for _, q := range rest[1:] {
				sel = column.ParallelFilterRows(p.cols[q.attr], sel, q.lo, q.hi, r.threads)
			}
		}
		ext, disc = p.cols["l_extendedprice"], p.cols["l_discount"]
	case ModeCracking, ModeHolistic:
		if r.acct != nil {
			r.acct.Acquire(1)
			defer r.acct.Release(1)
		}
		c := r.rowCracker(plan[0].attr)
		rg, rows := c.SelectRows(plan[0].lo, plan[0].hi)
		if r.reg != nil {
			r.reg.RecordAccess(plan[0].attr+".rows", rg.ExactHit())
			// Every other conjunct joins the index space too, so the
			// daemon's refinement spreads across all touched columns.
			for _, q := range residual {
				r.rowCracker(q.attr)
				r.reg.RecordAccess(q.attr+".rows", false)
			}
		}
		sel = rows
		ext, disc = r.li["l_extendedprice"], r.li["l_discount"]
	}
	for _, q := range residual {
		sel = column.ParallelFilterRows(r.li[q.attr], sel, q.lo, q.hi, r.threads)
	}

	var revenue int64
	for _, pos := range sel {
		revenue += ext[pos] * disc[pos] / 10000
	}
	return revenue
}

// Q12Row is one ship mode group of the shipping modes / order priority
// query.
type Q12Row struct {
	ShipMode  string
	HighCount int64 // orders with priority 1-URGENT or 2-HIGH
	LowCount  int64
}

// q12Lines collects the qualifying lineitems of Q12 — received in
// [loDay, hiDay), ship mode in {m1, m2}, commitdate < receiptdate,
// shipdate < commitdate — through the mode's access path, as aligned
// (orderkey, shipmode) arrays: the probe side of the Q12 join.
func (r *Runner) q12Lines(m1, m2, loDay, hiDay int64) (lkeys, lmode []int64) {
	keep := func(mode, commit, ship, receipt, okey int64) {
		if (mode == m1 || mode == m2) && commit < receipt && ship < commit {
			lkeys = append(lkeys, okey)
			lmode = append(lmode, mode)
		}
	}
	switch r.mode {
	case ModeScan:
		receipt := r.li["l_receiptdate"]
		commit := r.li["l_commitdate"]
		ship := r.li["l_shipdate"]
		mode := r.li["l_shipmode"]
		okey := r.li["l_orderkey"]
		for i, rc := range receipt {
			if rc >= loDay && rc < hiDay {
				keep(mode[i], commit[i], ship[i], rc, okey[i])
			}
		}
	case ModePresorted:
		p := r.projection("l_receiptdate")
		start := sort.Search(len(p.sortKey), func(i int) bool { return p.sortKey[i] >= loDay })
		end := sort.Search(len(p.sortKey), func(i int) bool { return p.sortKey[i] >= hiDay })
		pm, pc, ps, po := p.cols["l_shipmode"], p.cols["l_commitdate"], p.cols["l_shipdate"], p.cols["l_orderkey"]
		pr := p.cols["l_receiptdate"]
		for i := start; i < end; i++ {
			keep(pm[i], pc[i], ps[i], pr[i], po[i])
		}
	case ModeCracking, ModeHolistic:
		r.selectPayloads("l_receiptdate", loDay, hiDay, func(vals []int64, pl [][]int64) {
			pm, pc, ps, po := pl[0], pl[1], pl[2], pl[3]
			for i := range pm {
				keep(pm[i], pc[i], ps[i], vals[i], po[i])
			}
		})
	}
	return lkeys, lmode
}

// Q12 runs the shipping-modes query: lines received in `year` with ship
// mode in {m1, m2}, commitdate < receiptdate and shipdate < commitdate,
// joined to ORDERS for the priority split, grouped by ship mode.
//
// It executes on the join subsystem (internal/join) in every mode: the
// qualifying lines stream out of the mode's access path (scan,
// pre-sorted projection window, or the receiptdate sideways cracker's
// payload segments), join ORDERS on orderkey through the
// radix-partitioned hash join, and the matched pairs feed a fused
// grouped plan keyed by ship mode that sums the order's urgent/high
// flag — HighCount directly, LowCount as the remainder of the group
// count. The retained hand-rolled loops (Q12Oracle) are the
// differential oracle: both must return byte-identical rows.
func (r *Runner) Q12(m1, m2 int64, year int) []Q12Row {
	lkeys, lmode := r.q12Lines(m1, m2, YearDay(year), YearDay(year+1))

	pairs := join.GetPairs()
	defer join.PutPairs(pairs)
	join.Hash(join.Op{Kind: join.OpPairs},
		join.Input{Keys: r.ord["o_orderkey"], Rows: r.ordRows},
		join.Input{Keys: lkeys, Rows: identityRows(len(lkeys))},
		r.threads, pairs)

	mLo, mHi := r.attrDomain("l_shipmode")
	var res groupby.Result
	if err := join.Grouped(pairs,
		[]join.PairCol{{Side: join.Right, View: column.View{Base: lmode}}},
		[][2]int64{{mLo, mHi}},
		[]groupby.Agg{groupby.Sum("high"), groupby.Count()},
		[]join.PairCol{{Side: join.Left, View: column.View{Base: r.prioHi}}, {}},
		&res); err != nil {
		panic(err)
	}

	var out []Q12Row
	for _, m := range []int64{m1, m2} {
		for g := 0; g < res.Len(); g++ {
			if res.Keys[0][g] != m {
				continue
			}
			high := res.Aggs[0][g]
			out = append(out, Q12Row{
				ShipMode:  r.data.Modes.Decode(m),
				HighCount: high,
				LowCount:  res.Aggs[1][g] - high,
			})
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ShipMode < out[j].ShipMode })
	return out
}

// Q12Oracle is the original hand-rolled Q12: per-mode tight loops over
// a positional priority lookup. Retained as the differential oracle
// for the join-subsystem rewrite — TestQ12MatchesOracleAllModes
// asserts Q12 and Q12Oracle return byte-identical rows in every mode.
func (r *Runner) Q12Oracle(m1, m2 int64, year int) []Q12Row {
	loDay, hiDay := YearDay(year), YearDay(year+1)

	receipt := r.li["l_receiptdate"]
	commit := r.li["l_commitdate"]
	ship := r.li["l_shipdate"]
	mode := r.li["l_shipmode"]
	okey := r.li["l_orderkey"]

	counts := map[int64]*Q12Row{}
	account := func(m, orderkey int64) {
		row, ok := counts[m]
		if !ok {
			row = &Q12Row{ShipMode: r.data.Modes.Decode(m)}
			counts[m] = row
		}
		if r.prio[orderkey] <= 1 {
			row.HighCount++
		} else {
			row.LowCount++
		}
	}

	switch r.mode {
	case ModeScan:
		for i, rc := range receipt {
			if rc >= loDay && rc < hiDay && (mode[i] == m1 || mode[i] == m2) &&
				commit[i] < rc && ship[i] < commit[i] {
				account(mode[i], okey[i])
			}
		}
	case ModePresorted:
		p := r.projection("l_receiptdate")
		start := sort.Search(len(p.sortKey), func(i int) bool { return p.sortKey[i] >= loDay })
		end := sort.Search(len(p.sortKey), func(i int) bool { return p.sortKey[i] >= hiDay })
		pm, pc, ps, po := p.cols["l_shipmode"], p.cols["l_commitdate"], p.cols["l_shipdate"], p.cols["l_orderkey"]
		pr := p.cols["l_receiptdate"]
		for i := start; i < end; i++ {
			if (pm[i] == m1 || pm[i] == m2) && pc[i] < pr[i] && ps[i] < pc[i] {
				account(pm[i], po[i])
			}
		}
	case ModeCracking, ModeHolistic:
		r.selectPayloads("l_receiptdate", loDay, hiDay, func(vals []int64, pl [][]int64) {
			pm, pc, ps, po := pl[0], pl[1], pl[2], pl[3]
			for i := range pm {
				if (pm[i] == m1 || pm[i] == m2) && pc[i] < vals[i] && ps[i] < pc[i] {
					account(pm[i], po[i])
				}
			}
		})
	}

	var out []Q12Row
	for _, m := range []int64{m1, m2} {
		if row, ok := counts[m]; ok {
			out = append(out, *row)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ShipMode < out[j].ShipMode })
	return out
}

// Q3Row is one result row of the shipping-priority query: an order's
// revenue over its qualifying lines.
type Q3Row struct {
	OrderKey     int64
	Revenue      int64 // cents, sum(l_extendedprice*(1-l_discount))
	OrderDate    int64
	ShipPriority int64
}

// q3Lines collects the lineitems shipped after `day` through the
// mode's access path, as aligned (orderkey, discounted price) arrays:
// the probe side of Q3's second join. The discounted price reuses the
// derived l_discprice column, whose fixed-point arithmetic matches the
// oracle exactly.
func (r *Runner) q3Lines(day int64) (lkeys, ldisc []int64) {
	switch r.mode {
	case ModeScan:
		ship := r.li["l_shipdate"]
		okey := r.li["l_orderkey"]
		dp := r.li["l_discprice"]
		for i, s := range ship {
			if s > day {
				lkeys = append(lkeys, okey[i])
				ldisc = append(ldisc, dp[i])
			}
		}
	case ModePresorted:
		p := r.projection("l_shipdate")
		start := sort.Search(len(p.sortKey), func(i int) bool { return p.sortKey[i] > day })
		po, pd := p.cols["l_orderkey"], p.cols["l_discprice"]
		lkeys = append(lkeys, po[start:]...)
		ldisc = append(ldisc, pd[start:]...)
	case ModeCracking, ModeHolistic:
		// Shipdate sideways payload order: qty, ext, disc, tax, flag,
		// status, discprice, charge, orderkey.
		r.selectPayloads("l_shipdate", day+1, math.MaxInt64, func(_ []int64, pl [][]int64) {
			lkeys = append(lkeys, pl[8]...)
			ldisc = append(ldisc, pl[6]...)
		})
	}
	return lkeys, ldisc
}

// Q3 runs the shipping-priority query: customers of one market
// segment, their orders placed before `day`, and the revenue of each
// such order's lines shipped after `day`, grouped by (orderkey,
// orderdate, shippriority) and cut to the ten highest-revenue orders.
//
// It is a three-table plan on the join subsystem in every mode:
// CUSTOMER (filtered by segment) joins ORDERS (filtered by orderdate)
// on custkey, the surviving orders join LINEITEM (filtered by
// shipdate through the mode's access path) on orderkey, and the
// matched pairs feed a fused grouped plan summing the discounted
// price. The dimension scans are in-place — the big relation's access
// path is where the modes differ. Q3Oracle is the hand-rolled
// differential oracle; both must return byte-identical rows.
func (r *Runner) Q3(segment, day int64) []Q3Row {
	// Customer side: custkeys of the segment.
	var ckeys []int64
	cseg := r.cust["c_mktsegment"]
	ckey := r.cust["c_custkey"]
	for i, seg := range cseg {
		if seg == segment {
			ckeys = append(ckeys, ckey[i])
		}
	}
	// Orders side: custkey (join key), orderkey, orderdate and
	// shippriority of the orders placed before day.
	var oc, okeys, odates, oprios []int64
	ocust := r.ord["o_custkey"]
	okey := r.ord["o_orderkey"]
	odate := r.ord["o_orderdate"]
	oprio := r.ord["o_shippriority"]
	for i, d := range odate {
		if d < day {
			oc = append(oc, ocust[i])
			okeys = append(okeys, okey[i])
			odates = append(odates, d)
			oprios = append(oprios, oprio[i])
		}
	}

	// Join 1: customer ⋈ orders on custkey — the surviving orders.
	pairs := join.GetPairs()
	defer join.PutPairs(pairs)
	join.Hash(join.Op{Kind: join.OpPairs},
		join.Input{Keys: ckeys, Rows: identityRows(len(ckeys))},
		join.Input{Keys: oc, Rows: identityRows(len(oc))},
		r.threads, pairs)
	if pairs.Len() == 0 {
		return nil // no qualifying orders: skip the LINEITEM pass entirely
	}
	subKeys := make([]int64, 0, pairs.Len())
	subDates := make([]int64, 0, pairs.Len())
	subPrios := make([]int64, 0, pairs.Len())
	for _, oi := range pairs.Right {
		subKeys = append(subKeys, okeys[oi])
		subDates = append(subDates, odates[oi])
		subPrios = append(subPrios, oprios[oi])
	}

	// Join 2: surviving orders ⋈ lineitem on orderkey, grouped by the
	// order with the revenue summed from the lineitem side.
	lkeys, ldisc := r.q3Lines(day)
	pairs2 := join.GetPairs()
	defer join.PutPairs(pairs2)
	join.Hash(join.Op{Kind: join.OpPairs},
		join.Input{Keys: subKeys, Rows: identityRows(len(subKeys))},
		join.Input{Keys: lkeys, Rows: identityRows(len(lkeys))},
		r.threads, pairs2)

	kLo, kHi := column.Bounds(subKeys)
	dLo, dHi := column.Bounds(subDates)
	pLo, pHi := column.Bounds(subPrios)
	var res groupby.Result
	if err := join.Grouped(pairs2,
		[]join.PairCol{
			{Side: join.Left, View: column.View{Base: subKeys}},
			{Side: join.Left, View: column.View{Base: subDates}},
			{Side: join.Left, View: column.View{Base: subPrios}},
		},
		[][2]int64{{kLo, kHi}, {dLo, dHi}, {pLo, pHi}},
		[]groupby.Agg{groupby.Sum("l_discprice")},
		[]join.PairCol{{Side: join.Right, View: column.View{Base: ldisc}}},
		&res); err != nil {
		panic(err)
	}

	out := make([]Q3Row, 0, res.Len())
	for g := 0; g < res.Len(); g++ {
		out = append(out, Q3Row{
			OrderKey:     res.Keys[0][g],
			Revenue:      res.Aggs[0][g],
			OrderDate:    res.Keys[1][g],
			ShipPriority: res.Keys[2][g],
		})
	}
	return topQ3(out)
}

// topQ3 orders rows by revenue descending (orderkey ascending on
// ties — the deterministic cut both Q3 and its oracle share) and keeps
// the top ten.
func topQ3(rows []Q3Row) []Q3Row {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Revenue != rows[j].Revenue {
			return rows[i].Revenue > rows[j].Revenue
		}
		return rows[i].OrderKey < rows[j].OrderKey
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	if len(rows) == 0 {
		return nil
	}
	return rows
}

// Q3Oracle is the hand-rolled Q3: a segment lookup table, a qualifying-
// order filter, and one scan of LINEITEM accumulating revenue per
// order. Mode-independent (the data is shared), it is the differential
// oracle TestQ3MatchesOracleAllModes checks every mode's Q3 against.
func (r *Runner) Q3Oracle(segment, day int64) []Q3Row {
	inSeg := make([]bool, len(r.cust["c_custkey"]))
	for i, seg := range r.cust["c_mktsegment"] {
		if seg == segment {
			inSeg[r.cust["c_custkey"][i]] = true
		}
	}
	// o_orderkey is dense 0..N-1, so qualifying orders index directly.
	odate := r.ord["o_orderdate"]
	qual := make([]bool, len(odate))
	for i, d := range odate {
		if d < day && inSeg[r.ord["o_custkey"][i]] {
			qual[r.ord["o_orderkey"][i]] = true
		}
	}
	ship := r.li["l_shipdate"]
	okey := r.li["l_orderkey"]
	dp := r.li["l_discprice"]
	rev := make(map[int64]int64)
	for i, s := range ship {
		if s > day && qual[okey[i]] {
			rev[okey[i]] += dp[i]
		}
	}
	oprio := r.ord["o_shippriority"]
	out := make([]Q3Row, 0, len(rev))
	for k, v := range rev {
		out = append(out, Q3Row{OrderKey: k, Revenue: v, OrderDate: odate[k], ShipPriority: oprio[k]})
	}
	return topQ3(out)
}
