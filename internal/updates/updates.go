// Package updates implements the pending-updates store of adaptive
// indexing (Section 4.2, Updates; Section 5.7 of the paper), following
// the design of Idreos et al. ("Updating a Cracked Database", SIGMOD
// 2007): updates are buffered as pending insertions/deletions and merged
// into the cracker column lazily — by a query whose requested value range
// contains pending values, or by a holistic worker whose random pivot
// falls into a piece with pending values. An update is modelled as a
// deletion followed by an insertion.
package updates

import (
	"sync"

	"holistic/internal/cracking"
)

// Op is one pending operation against an attribute.
type Op struct {
	// Delete distinguishes pending deletions from pending insertions.
	Delete bool
	// Value is the attribute value inserted or deleted.
	Value int64
	// Row is the base row id of an insertion, or — when HasRow is set —
	// of the specific tuple a deletion targets.
	Row uint32
	// HasRow marks a row-targeted deletion: the merge removes exactly
	// (Value, Row) from a rowid-carrying cracker instead of an
	// unspecified occurrence of Value, keeping value-duplicate deletes
	// consistent with the row-level overlay conjunctive probes read.
	HasRow bool
}

// Pending buffers the not-yet-merged updates of one attribute in arrival
// order. It is safe for concurrent use: queries, the update stream and
// holistic workers all touch it.
type Pending struct {
	mu  sync.Mutex
	ops []Op
}

// NewPending returns an empty store.
func NewPending() *Pending { return &Pending{} }

// AddInsert buffers a pending insertion.
func (p *Pending) AddInsert(v int64, row uint32) {
	p.mu.Lock()
	p.ops = append(p.ops, Op{Value: v, Row: row})
	p.mu.Unlock()
}

// AddDelete buffers a pending deletion of an unspecified occurrence of
// v (value/multiset semantics).
func (p *Pending) AddDelete(v int64) {
	p.mu.Lock()
	p.ops = append(p.ops, Op{Delete: true, Value: v})
	p.mu.Unlock()
}

// AddDeleteRow buffers a pending deletion of the tuple (v, row): the
// merge removes exactly that row when the cracker carries rowids.
func (p *Pending) AddDeleteRow(v int64, row uint32) {
	p.mu.Lock()
	p.ops = append(p.ops, Op{Delete: true, Value: v, Row: row, HasRow: true})
	p.mu.Unlock()
}

// AddUpdate buffers an update as a deletion followed by an insertion at
// the same row id, the paper's definition of an update with tuple
// identity preserved.
func (p *Pending) AddUpdate(oldV, newV int64, row uint32) {
	p.mu.Lock()
	p.ops = append(p.ops,
		Op{Delete: true, Value: oldV, Row: row, HasRow: true},
		Op{Value: newV, Row: row})
	p.mu.Unlock()
}

// Len returns the number of pending operations.
func (p *Pending) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ops)
}

// HasInRange reports whether any pending operation's value falls in
// [lo, hi) — the check a query makes before deciding to merge.
func (p *Pending) HasInRange(lo, hi int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, op := range p.ops {
		if op.Value >= lo && op.Value < hi {
			return true
		}
	}
	return false
}

// MergeRange merges every pending operation whose value lies in [lo, hi)
// into col via the Ripple algorithm, preserving arrival order, and
// returns how many operations were merged. Operations outside the range
// stay pending — "only those updates are merged on-the-fly".
// The store's mutex is held across the merge itself, so a pending value
// is always observable — either still pending or already merged — never
// lost in between. Lock order is always Pending.mu before the column
// lock; no code path acquires them in the other order.
func (p *Pending) MergeRange(col *cracking.Column, lo, hi int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var toMerge []Op
	kept := p.ops[:0]
	for _, op := range p.ops {
		if op.Value >= lo && op.Value < hi {
			toMerge = append(toMerge, op)
		} else {
			kept = append(kept, op)
		}
	}
	p.ops = kept
	for _, op := range toMerge {
		merge(col, op)
	}
	return len(toMerge)
}

// merge applies one operation to the cracker column.
func merge(col *cracking.Column, op Op) {
	switch {
	case !op.Delete:
		col.MergeInsert(op.Value, op.Row)
	case op.HasRow:
		col.MergeDeleteRow(op.Value, op.Row)
	default:
		col.MergeDelete(op.Value)
	}
}

// MergeAll merges every pending operation into col.
func (p *Pending) MergeAll(col *cracking.Column) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	toMerge := p.ops
	p.ops = nil
	for _, op := range toMerge {
		merge(col, op)
	}
	return len(toMerge)
}
