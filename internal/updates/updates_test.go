package updates

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"holistic/internal/column"
	"holistic/internal/cracking"
)

func randVals(n int, seed int64, domain int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(domain)
	}
	return vals
}

func TestAddAndLen(t *testing.T) {
	p := NewPending()
	if p.Len() != 0 {
		t.Errorf("fresh Len() = %d", p.Len())
	}
	p.AddInsert(5, 1)
	p.AddDelete(7)
	p.AddUpdate(3, 9, 2)
	if p.Len() != 4 {
		t.Errorf("Len() = %d, want 4 (update counts as delete+insert)", p.Len())
	}
}

func TestHasInRange(t *testing.T) {
	p := NewPending()
	p.AddInsert(50, 0)
	if !p.HasInRange(0, 100) {
		t.Error("HasInRange missed pending value")
	}
	if p.HasInRange(51, 100) {
		t.Error("HasInRange matched outside range")
	}
	if p.HasInRange(0, 50) {
		t.Error("HasInRange matched exclusive upper bound")
	}
}

func TestMergeRangeOnlyTouchesRange(t *testing.T) {
	base := randVals(10_000, 1, 1000)
	c := cracking.New("a", base, cracking.Config{})
	c.CrackAt(500)
	p := NewPending()
	p.AddInsert(100, 0)
	p.AddInsert(900, 0)
	merged := p.MergeRange(c, 0, 500)
	if merged != 1 {
		t.Fatalf("merged %d ops, want 1", merged)
	}
	if p.Len() != 1 {
		t.Fatalf("Len() = %d after partial merge, want 1", p.Len())
	}
	if got := c.SelectRange(100, 101).Count(); got != column.CountRange(base, 100, 101)+1 {
		t.Error("merged insert not visible")
	}
	if got := c.SelectRange(900, 901).Count(); got != column.CountRange(base, 900, 901) {
		t.Error("out-of-range insert leaked into the column")
	}
}

func TestMergeAllAppliesInOrder(t *testing.T) {
	base := []int64{10, 20, 30}
	c := cracking.New("a", base, cracking.Config{})
	p := NewPending()
	p.AddInsert(25, 3)
	p.AddDelete(25) // deletes the value just inserted
	p.AddInsert(25, 4)
	if n := p.MergeAll(c); n != 3 {
		t.Fatalf("MergeAll = %d, want 3", n)
	}
	if got := c.SelectRange(25, 26).Count(); got != 1 {
		t.Fatalf("count of 25 = %d, want 1 (insert, delete, insert)", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergePreservesQueryCorrectness(t *testing.T) {
	base := randVals(20_000, 2, 1000)
	c := cracking.New("a", base, cracking.Config{})
	p := NewPending()
	live := append([]int64(nil), base...)
	rng := rand.New(rand.NewSource(3))

	for i := 0; i < 50; i++ {
		// Interleave queries with update arrivals; queries merge their
		// range before selecting, as the engine does.
		v := rng.Int63n(1000)
		p.AddInsert(v, 0)
		live = append(live, v)

		lo := rng.Int63n(1000)
		hi := lo + rng.Int63n(1000-lo) + 1
		p.MergeRange(c, lo, hi)
		got := c.SelectRange(lo, hi).Count()
		want := column.CountRange(live, lo, hi)
		if got != want {
			t.Fatalf("query %d [%d,%d): got %d, want %d", i, lo, hi, got, want)
		}
	}
	p.MergeAll(c)
	snap := c.Snapshot()
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	for i := range live {
		if snap[i] != live[i] {
			t.Fatal("final column diverged from reference")
		}
	}
}

func TestConcurrentMergersAndWriters(t *testing.T) {
	base := randVals(10_000, 4, 1000)
	c := cracking.New("a", base, cracking.Config{})
	c.CrackAt(500)
	p := NewPending()
	var wg sync.WaitGroup
	const writers = 4
	const perWriter = 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				p.AddInsert(rng.Int63n(1000), 0)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 50; i++ {
			lo := rng.Int63n(1000)
			p.MergeRange(c, lo, lo+100)
		}
	}()
	wg.Wait()
	p.MergeAll(c)
	if c.Len() != len(base)+writers*perWriter {
		t.Fatalf("Len() = %d, want %d", c.Len(), len(base)+writers*perWriter)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
