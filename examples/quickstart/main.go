// Quickstart: build a store, run range queries, watch holistic indexing
// refine the physical design in the background.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"holistic"
)

func main() {
	const (
		rows   = 1 << 20
		domain = 1 << 30
	)

	// A store in holistic mode: queries crack adaptively AND a background
	// daemon spends idle CPU contexts refining the index space.
	store := holistic.NewStore(holistic.Config{
		Mode:           holistic.ModeHolistic,
		Threads:        2,
		TuningInterval: 5 * time.Millisecond, // paper default is 1s; smaller for a demo
		Seed:           1,
	})
	defer store.Close()

	rng := rand.New(rand.NewSource(42))
	prices := make([]int64, rows)
	for i := range prices {
		prices[i] = rng.Int63n(domain)
	}
	if err := store.AddIntColumn("price", prices); err != nil {
		log.Fatal(err)
	}

	// First query: creates the adaptive index (pays the column copy and
	// the first crack).
	start := time.Now()
	n, err := store.CountRange("price", domain/4, domain/2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 1: %8d rows in %8v  (index created)\n", n, time.Since(start).Round(time.Microsecond))

	// Let the daemon use the idle time between user queries.
	time.Sleep(200 * time.Millisecond)

	// Later queries find a much finer index than their own cracking
	// alone would have produced.
	for q := 2; q <= 5; q++ {
		lo := rng.Int63n(domain)
		hi := lo + rng.Int63n(domain-lo) + 1
		start = time.Now()
		n, err = store.CountRange("price", lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: %8d rows in %8v\n", q, n, time.Since(start).Round(time.Microsecond))
	}

	// Aggregates and row materialization ride the same adaptive index:
	// the fold runs inside the cracked pieces the predicate selects.
	lo, hi := int64(domain/4), int64(domain/2)
	sum, err := store.SumRange("price", lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	mn, mx, ok, err := store.MinMaxRange("price", lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := store.SelectRows("price", lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("\nsum(price) over [%d, %d) = %d, min %d, max %d, %d row ids materialized\n",
			lo, hi, sum, mn, mx, len(ids))
	}

	st := store.Stats()
	fmt.Printf("\nself-tuning state: %d index partitions, %d background refinements over %d activations\n",
		st.Pieces, st.Refinements, st.Activations)
}
