// TPC-H mini-benchmark: Q1, Q6 and Q12 under the four execution modes of
// the paper's Figure 14 — plain scans, a pre-sorted projection,
// sideways-style cracking, and holistic indexing.
//
// Q6 runs as a real three-predicate conjunction (l_shipdate ∧
// l_discount ∧ l_quantity): the planner orders the conjuncts by
// estimated selectivity, the most selective one runs through the mode's
// access path, the rest refine its candidate rows by positional probes,
// and the revenue attributes are fetched late. Under holistic indexing
// all three conjunct columns join the daemon's index space.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"time"

	"holistic/internal/tpch"
)

const (
	orders   = 50_000
	variants = 10
)

func main() {
	fmt.Printf("generating TPC-H data (%d orders)...\n", orders)
	data := tpch.Generate(orders, 42)
	fmt.Printf("lineitem: %d rows\n\n", data.Lineitem.Rows())
	vs := tpch.Variants(variants, 7)

	modes := []tpch.Mode{tpch.ModeScan, tpch.ModePresorted, tpch.ModeCracking, tpch.ModeHolistic}
	fmt.Println("Q6* = three-predicate conjunction (shipdate ∧ discount ∧ quantity), planner-ordered")
	fmt.Printf("%-20s %-6s %12s %12s %12s\n", "mode", "query", "first", "rest avg", "total")
	for _, m := range modes {
		r := tpch.NewRunner(data, m, tpch.RunnerConfig{
			Interval:    2 * time.Millisecond,
			Refinements: 16,
			L1Values:    4096,
			Contexts:    2,
			Seed:        1,
		})
		r.Prepare("l_shipdate", "l_receiptdate")

		report := func(label string, run func(v tpch.QueryVariant)) {
			times := make([]time.Duration, len(vs))
			for i, v := range vs {
				start := time.Now()
				run(v)
				times[i] = time.Since(start)
			}
			var total time.Duration
			for _, t := range times {
				total += t
			}
			rest := time.Duration(0)
			if len(times) > 1 {
				rest = (total - times[0]) / time.Duration(len(times)-1)
			}
			fmt.Printf("%-20s %-6s %12v %12v %12v\n", m, label,
				times[0].Round(time.Microsecond), rest.Round(time.Microsecond), total.Round(time.Microsecond))
		}

		report("Q1", func(v tpch.QueryVariant) { r.Q1(v.Q1Delta) })
		report("Q6*", func(v tpch.QueryVariant) { r.Q6(v.Q6Year, v.Q6Discount, v.Q6Quantity) })
		report("Q12", func(v tpch.QueryVariant) { r.Q12(v.Q12Mode1, v.Q12Mode2, v.Q12Year) })
		if m == tpch.ModePresorted {
			fmt.Printf("%-20s (pre-sorting cost excluded above: %v)\n", "", r.PrepareTime.Round(time.Millisecond))
		}
		r.Close()
		fmt.Println()
	}

	// Show one actual result so the demo is verifiable.
	r := tpch.NewRunner(data, tpch.ModeScan, tpch.RunnerConfig{})
	fmt.Println("sample Q1 output (delta=90):")
	for _, row := range r.Q1(90) {
		fmt.Printf("  %s | %s | qty %12d | base $%14.2f | count %8d\n",
			row.ReturnFlag, row.LineStatus, row.SumQty, float64(row.SumBase)/100, row.Count)
	}
}
