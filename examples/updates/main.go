// Updates under adaptive vs holistic indexing (the paper's Section 5.7):
// range queries interleave with insert batches; inserts are buffered as
// pending updates and merged into the cracker column via the Ripple
// algorithm — by queries that need them, and (under holistic indexing)
// by background workers during idle time, which also keeps the index
// up to date for free.
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"holistic"
	"holistic/internal/workload"
)

const (
	rows    = 1 << 19
	domain  = 1 << 30
	queries = 300
)

func run(mode holistic.Mode) (time.Duration, int) {
	store := holistic.NewStore(holistic.Config{
		Mode:           mode,
		Threads:        2,
		TuningInterval: time.Millisecond,
		Seed:           3,
	})
	defer store.Close()
	if err := store.AddIntColumn("a", workload.UniformColumn(rows, domain, 1)); err != nil {
		log.Fatal(err)
	}

	// High Frequency Low Volume: 10 inserts after every 10 queries.
	batches := workload.InsertBatches(workload.HFLV, queries, domain, 2)
	next := 0
	rng := rand.New(rand.NewSource(5))

	var queryTime time.Duration
	total := 0
	for q := 0; q < queries; q++ {
		lo := rng.Int63n(domain)
		hi := lo + rng.Int63n(domain-lo) + 1
		start := time.Now()
		n, err := store.CountRange("a", lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		queryTime += time.Since(start)
		total += n

		for next < len(batches) && batches[next].AfterQuery == q+1 {
			for _, v := range batches[next].Values {
				if err := store.Insert("a", v); err != nil {
					log.Fatal(err)
				}
			}
			next++
		}
		if q == 9 {
			// Idle gap in the workload: only holistic indexing can use it
			// (refining pieces AND merging pending inserts).
			time.Sleep(50 * time.Millisecond)
		}
	}
	return queryTime, total
}

func main() {
	fmt.Printf("HFLV update scenario: %d range queries, 10 inserts every 10 queries\n\n", queries)
	aTime, aRows := run(holistic.ModeAdaptive)
	hTime, hRows := run(holistic.ModeHolistic)
	fmt.Printf("adaptive indexing: %10v  (%d result rows)\n", aTime.Round(time.Millisecond), aRows)
	fmt.Printf("holistic indexing: %10v  (%d result rows)\n", hTime.Round(time.Millisecond), hRows)
	if aRows != hRows {
		log.Fatalf("modes disagree: %d vs %d result rows", aRows, hRows)
	}
	fmt.Println("\nboth modes return identical results; holistic spends idle time merging")
	fmt.Println("pending inserts and refining pieces, so queries find the work done")
}
