// Exploratory analysis: the ad-hoc, no-workload-knowledge scenario that
// motivates holistic indexing (the paper's SkyServer use case). An
// astronomer sweeps regions of the sky with range queries whose focus
// drifts and jumps; nobody could have chosen indexes upfront.
//
// The example replays the same exploration session against an
// adaptive-only store and a holistic store and reports the running
// totals: holistic indexing exploits the think-time between queries.
//
//	go run ./examples/exploratory
package main

import (
	"fmt"
	"log"
	"time"

	"holistic"
	"holistic/internal/workload"
)

const (
	rows    = 1 << 20
	domain  = 1 << 30
	queries = 200
	// thinkTime models the gap between an analyst's queries: the idle
	// resource holistic indexing feeds on.
	thinkTime = 2 * time.Millisecond
)

func session(mode holistic.Mode) (time.Duration, holistic.Stats) {
	store := holistic.NewStore(holistic.Config{
		Mode:           mode,
		Threads:        2,
		TuningInterval: time.Millisecond,
		Seed:           7,
	})
	defer store.Close()

	// Sky catalog: right ascension, declination, magnitude.
	for i, name := range []string{"ra", "dec", "mag"} {
		if err := store.AddIntColumn(name, workload.UniformColumn(rows, domain, int64(i))); err != nil {
			log.Fatal(err)
		}
	}

	// The SkyServer trace: drifting region sweeps with jumps (Fig 10e),
	// all on right ascension, like the paper's Photoobjall log replay.
	series := workload.PredicateSeries(workload.SkyServer, queries, domain, 99)

	var busy time.Duration
	for _, v := range series {
		start := time.Now()
		if _, err := store.CountRange("ra", v, v+domain/64); err != nil {
			log.Fatal(err)
		}
		busy += time.Since(start)
		time.Sleep(thinkTime) // analyst is thinking; CPUs are idle
	}
	return busy, store.Stats()
}

func main() {
	fmt.Printf("replaying a %d-query exploratory session (SkyServer-like pattern)\n\n", queries)

	adaptiveTime, adaptiveStats := session(holistic.ModeAdaptive)
	holisticTime, holisticStats := session(holistic.ModeHolistic)

	fmt.Printf("adaptive indexing:  query time %8v, %5d partitions\n",
		adaptiveTime.Round(time.Millisecond), adaptiveStats.Pieces)
	fmt.Printf("holistic indexing:  query time %8v, %5d partitions (%d background refinements)\n",
		holisticTime.Round(time.Millisecond), holisticStats.Pieces, holisticStats.Refinements)
	if holisticTime < adaptiveTime {
		fmt.Printf("\nholistic indexing cut query time by %.0f%% using only idle think-time\n",
			100*(1-holisticTime.Seconds()/adaptiveTime.Seconds()))
	}
}
