// The public observability surface (DESIGN.md §9): per-query Explain
// reports, the JSONL trace stream, and the Store.Metrics snapshot that
// backs the /debug/holistic endpoint.

package holistic

import (
	"io"
	"os"
	"time"

	"holistic/internal/engine"
	"holistic/internal/groupby"
	"holistic/internal/holistic"
	"holistic/internal/obs"
	"holistic/internal/obs/econ"
)

// ExplainConjunct is one planned range conjunct of an Explain report,
// in pipeline (most-selective-first) order.
type ExplainConjunct struct {
	// Side is "" for single-relation queries, "left"/"right" for joins.
	Side string
	Attr string
	// The conjunct selects Lo <= Attr < Hi.
	Lo, Hi int64
	// EstRows is the planner's standalone cardinality estimate — exact
	// where the mode's index structures can answer, a uniform-domain
	// guess otherwise.
	EstRows float64
	// ActualRows is the conjunct's true standalone match count, measured
	// by an O(N) oracle probe (Explain only; -1 on error paths).
	ActualRows int64
	// SurvivingRows is the candidate count left after this conjunct in
	// pipeline order; -1 when the stage never ran (an earlier conjunct
	// emptied the selection).
	SurvivingRows int64
	// Driving marks the conjunct evaluated through the mode's native
	// access path; the rest refine by positional probes.
	Driving bool
}

// ExplainStage is one timed pipeline stage of an Explain report.
type ExplainStage struct {
	Name     string
	Duration time.Duration
}

// Explain is the execution report of one traced query: what the
// planner estimated, what actually happened, and which physical
// choices (representation, grouping/join strategy) were made and why.
type Explain struct {
	// Kind is the terminal ("count", "sum", "grouped", "join", ...);
	// Mode the executor mode label the query ran under.
	Kind, Mode string
	// Rows is the relation's row count (the left relation for joins);
	// RowsRight the right relation's for joins.
	Rows, RowsRight int
	// Representation names the intermediate selection representation
	// ("bitmap", "poslist", or "native" for single-conjunct pushdowns),
	// with the planner's reason.
	Representation, RepresentationReason string
	// Strategy names the physical grouping or join strategy ("dense",
	// "hash", "sort", "merge"), with the reason it won.
	Strategy, StrategyReason string
	Conjuncts                []ExplainConjunct
	Stages                   []ExplainStage
	// Stats carries the numeric statistics that drove the decisions
	// (key-order spans, selection densities, ...).
	Stats map[string]float64
	// Scanned is the driving select's candidate count, Emitted the
	// final row/group/pair count, Result the scalar answer where one
	// exists.
	Scanned, Emitted, Result int64
	Elapsed                  time.Duration

	text string
}

// String renders the report in the human-readable explain format.
func (e *Explain) String() string { return e.text }

// explainFrom converts the internal trace into the public report.
func explainFrom(tr *obs.QueryTrace) *Explain {
	e := &Explain{
		Kind: tr.Kind, Mode: tr.Mode,
		Rows: tr.Rows, RowsRight: tr.RowsRight,
		Representation: tr.Rep, RepresentationReason: tr.RepReason,
		Strategy: tr.Strategy, StrategyReason: tr.StrategyReason,
		Scanned: tr.Scanned, Emitted: tr.Emitted, Result: tr.Result,
		Elapsed: time.Duration(tr.TotalNanos),
		text:    tr.String(),
	}
	for _, c := range tr.Conjuncts {
		e.Conjuncts = append(e.Conjuncts, ExplainConjunct{
			Side: c.Side, Attr: c.Attr, Lo: c.Lo, Hi: c.Hi,
			EstRows: c.EstRows, ActualRows: c.ActualRows,
			SurvivingRows: c.CumRows, Driving: c.Driving,
		})
	}
	for _, st := range tr.Stages {
		e.Stages = append(e.Stages, ExplainStage{Name: st.Name, Duration: time.Duration(st.Nanos)})
	}
	if len(tr.Stat) > 0 {
		e.Stats = make(map[string]float64, len(tr.Stat))
		for k, v := range tr.Stat {
			e.Stats[k] = v
		}
	}
	return e
}

// Explain executes the query as a count with tracing forced on and
// returns the execution report: per-conjunct estimated versus actual
// selectivity (the actuals measured by an O(N) oracle probe per
// conjunct — Explain is a diagnostic, not a hot path) and the
// representation choice with its reason.
func (q *Query) Explain() (*Explain, error) {
	r, err := q.s.runner()
	if err != nil {
		return nil, err
	}
	tr, _, err := r.ExplainCount(q.preds)
	if err != nil {
		return nil, err
	}
	return explainFrom(tr), nil
}

// Explain executes the grouped aggregation with tracing forced on and
// returns the execution report, including the physical grouping
// strategy (dense, hash, or sort) and the statistics that drove the
// choice. Aggregates default to count(*) when none are given.
func (g *GroupedQuery) Explain(aggs ...Agg) (*Explain, error) {
	r, err := g.q.s.runner()
	if err != nil {
		return nil, err
	}
	if len(aggs) == 0 {
		aggs = []Agg{Count()}
	}
	specs := make([]groupby.Agg, len(aggs))
	for i, a := range aggs {
		specs[i] = a.agg
	}
	res := &groupby.Result{}
	tr, err := r.ExplainGrouped(res, g.keys, specs, g.q.preds)
	if err != nil {
		return nil, err
	}
	return explainFrom(tr), nil
}

// Explain executes the join as a count with tracing forced on and
// returns the execution report: side-scoped conjuncts with estimated
// versus actual selectivity, and the physical join strategy (hash or
// index-clustered merge) with the key-order statistics that drove it.
func (jq *JoinQuery) Explain() (*Explain, error) {
	j, err := jq.build()
	if err != nil {
		return nil, err
	}
	tr, _, err := j.Explain()
	if err != nil {
		return nil, err
	}
	return explainFrom(tr), nil
}

// SetTraceJSONL streams every executed query's trace to w as one JSON
// object per line (the schema of DESIGN.md §9); nil detaches (flushing
// any buffered lines). Writes are buffered and happen synchronously at
// query end under an internal mutex; Store.Close flushes the stream,
// and write/encode errors surface as counters in Store.Metrics instead
// of failing queries. The caller owns closing w.
func (s *Store) SetTraceJSONL(w io.Writer) error {
	if w == nil {
		return s.setTraceSink(nil)
	}
	return s.setTraceSink(obs.NewJSONLSink(w))
}

// SetTraceJSONLFile streams traces to path, bounding the file at
// maxBytes (0 selects 64 MiB): when the cap is hit the file rotates to
// path+".1" (replacing any previous rotation) and a fresh file starts,
// so an always-on trace stream holds at most ~2x maxBytes of disk. The
// store owns the file; Close flushes and closes it.
func (s *Store) SetTraceJSONLFile(path string, maxBytes int64) error {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sink := obs.NewJSONLSinkOptions(f, obs.SinkOptions{
		MaxBytes:  maxBytes,
		OwnWriter: true,
		Rotate: func() (io.WriteCloser, error) {
			if err := os.Rename(path, path+".1"); err != nil {
				return nil, err
			}
			return os.Create(path)
		},
	})
	if err := s.setTraceSink(sink); err != nil {
		_ = f.Close()
		return err
	}
	return nil
}

// setTraceSink swaps the runner's trace sink, flushing and closing any
// sink the store previously owned.
func (s *Store) setTraceSink(sink *obs.JSONLSink) error {
	r, err := s.runner()
	if err != nil {
		return err
	}
	if sink == nil {
		r.SetTraceSink(nil)
	} else {
		r.SetTraceSink(sink)
	}
	s.mu.Lock()
	old := s.traceSink
	s.traceSink = sink
	s.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	return nil
}

// Metrics is the full telemetry snapshot of one Store: lifetime query
// latency histograms and physical-choice counters, access-path
// counters, and — under ModeHolistic — the daemon's convergence state.
// It marshals to the JSON served per store on /debug/holistic.
type Metrics struct {
	// Mode echoes the configured mode; Rows the relation's row count.
	Mode string `json:"mode"`
	Rows int    `json:"rows"`
	// Query aggregates the conjunctive query pipeline: query count,
	// per-operation latency summaries (p50/p90/p99/p999),
	// representation and strategy counters, and the strategy-transition
	// timeline.
	Query *obs.QuerySnapshot `json:"query"`
	// Exec aggregates the mode's access path: select latency, cracker
	// builds, merged pending updates, key-order index walks.
	Exec *obs.ExecSnapshot `json:"exec"`
	// Daemon reports background-refinement convergence (ModeHolistic
	// only): per-column state timelines, refinement and reroll
	// counters, cycle totals, and the overall convergence ratio.
	Daemon *holistic.Convergence `json:"daemon,omitempty"`
	// Recovery reports the durability layer (stores opened with
	// OpenStore only): WAL activity, snapshot generations, and what the
	// last recovery found and replayed.
	Recovery *obs.DurableSnapshot `json:"recovery,omitempty"`
	// Flight reports the flight recorder and its watchdog: ring
	// occupancy, rolling baselines, anomaly counts (DESIGN.md §11).
	Flight *FlightStatus `json:"flight,omitempty"`
	// Economics reports the refinement cost-benefit ledger — per-index
	// daemon time invested versus estimated drive-latency savings — and
	// the key-range access/refine heatmaps (DESIGN.md §12).
	Economics *econ.Snapshot `json:"economics,omitempty"`
	// Trace reports the JSONL trace sink attached via SetTraceJSONL /
	// SetTraceJSONLFile: lines and bytes written, write errors (which
	// would otherwise drop silently), and file rotations.
	Trace *obs.TraceSinkStatus `json:"trace,omitempty"`
}

// Metrics returns the store's telemetry snapshot. Like Stats it is a
// pure read: it never builds the executor as a side effect, and it is
// safe to call concurrently with queries (the recording side is
// lock-free).
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	exec := s.exec
	rows := s.table.Rows()
	sink := s.traceSink
	s.mu.Unlock()
	m := Metrics{
		Mode:  s.cfg.Mode.String(),
		Rows:  rows,
		Query: s.met.Snapshot(),
		Exec:  s.execMet.Snapshot(),
	}
	if h, ok := exec.(*engine.HolisticExecutor); ok {
		m.Daemon = h.Daemon.Convergence()
	}
	if s.dur != nil {
		m.Recovery = s.dur.snapshotMetrics()
	}
	m.Flight = s.flightStatus()
	m.Economics = s.ec.Snapshot()
	if sink != nil {
		st := sink.Snapshot()
		m.Trace = &st
	}
	return m
}
