package holistic

import (
	"math/rand"
	"testing"
	"time"

	"holistic/internal/column"
	"holistic/internal/workload"
)

func storeConfig(mode Mode) Config {
	return Config{
		Mode:                 mode,
		Threads:              2,
		TuningInterval:       time.Millisecond,
		RefinementsPerWorker: 8,
		L1CacheBytes:         4096,
		Seed:                 1,
	}
}

func buildStore(t *testing.T, mode Mode, attrs, rows int, domain int64) (*Store, [][]int64) {
	t.Helper()
	s := NewStore(storeConfig(mode))
	bases := make([][]int64, attrs)
	for a := 0; a < attrs; a++ {
		bases[a] = workload.UniformColumn(rows, domain, int64(200+a))
		if err := s.AddIntColumn(attr(a), bases[a]); err != nil {
			t.Fatal(err)
		}
	}
	return s, bases
}

func attr(a int) string { return string(rune('a' + a)) }

func TestAllModesAnswerCorrectly(t *testing.T) {
	const domain = 1 << 16
	modes := []Mode{ModeScan, ModeOffline, ModeOnline, ModeAdaptive, ModeStochastic, ModeCCGI, ModeHolistic}
	for _, mode := range modes {
		s, bases := buildStore(t, mode, 2, 10_000, domain)
		s.Prepare()
		rng := rand.New(rand.NewSource(5))
		for q := 0; q < 40; q++ {
			a := rng.Intn(2)
			lo := rng.Int63n(domain)
			hi := lo + rng.Int63n(domain-lo) + 1
			got, err := s.CountRange(attr(a), lo, hi)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			if want := column.CountRange(bases[a], lo, hi); got != want {
				t.Fatalf("%v query %d: got %d, want %d", mode, q, got, want)
			}
		}
		s.Close()
	}
}

func TestAddColumnAfterQueryFails(t *testing.T) {
	s, _ := buildStore(t, ModeAdaptive, 1, 100, 1000)
	defer s.Close()
	if _, err := s.CountRange("a", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.AddIntColumn("late", make([]int64, 100)); err == nil {
		t.Fatal("column added after first query")
	}
}

func TestUnknownAttribute(t *testing.T) {
	s, _ := buildStore(t, ModeAdaptive, 1, 100, 1000)
	defer s.Close()
	if _, err := s.CountRange("nope", 0, 10); err == nil {
		t.Fatal("unknown attribute did not error")
	}
}

func TestInsertSupportedModes(t *testing.T) {
	s, base := buildStore(t, ModeAdaptive, 1, 5_000, 1000)
	defer s.Close()
	s.CountRange("a", 0, 500)
	for i := 0; i < 10; i++ {
		if err := s.Insert("a", 400); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := s.CountRange("a", 400, 401)
	if want := column.CountRange(base[0], 400, 401) + 10; got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}

	scan, _ := buildStore(t, ModeScan, 1, 100, 1000)
	defer scan.Close()
	if err := scan.Insert("a", 1); err == nil {
		t.Fatal("scan mode accepted an insert")
	}
}

func TestHolisticBackgroundRefinement(t *testing.T) {
	s, base := buildStore(t, ModeHolistic, 2, 100_000, 1<<20)
	defer s.Close()
	if _, err := s.CountRange("a", 0, 1<<19); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for s.Stats().Refinements == 0 {
		select {
		case <-deadline:
			t.Fatalf("daemon never refined; stats %+v", s.Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
	st := s.Stats()
	if st.Pieces < 3 || st.Activations == 0 {
		t.Errorf("stats = %+v, want pieces and activations to grow", st)
	}
	// Correctness under continuous refinement.
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(1 << 20)
		hi := lo + rng.Int63n(1<<20-lo) + 1
		got, _ := s.CountRange("a", lo, hi)
		if want := column.CountRange(base[0], lo, hi); got != want {
			t.Fatalf("query %d: got %d, want %d", q, got, want)
		}
	}
}

func TestAddPotentialIndex(t *testing.T) {
	s, _ := buildStore(t, ModeHolistic, 2, 20_000, 1<<16)
	defer s.Close()
	if err := s.AddPotentialIndex("b"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for s.Stats().Pieces < 3 {
		select {
		case <-deadline:
			t.Fatalf("potential index not refined; stats %+v", s.Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
	sa, _ := buildStore(t, ModeAdaptive, 1, 100, 1000)
	defer sa.Close()
	if err := sa.AddPotentialIndex("a"); err == nil {
		t.Fatal("adaptive mode accepted a potential index")
	}
}

func TestStrategyMapping(t *testing.T) {
	pairs := map[Strategy]string{
		StrategyRandom: "W4", StrategyDistance: "W1",
		StrategyFrequency: "W2", StrategyMisses: "W3",
	}
	for s, want := range pairs {
		if got := s.internal().String(); got != want {
			t.Errorf("%d.internal() = %s, want %s", int(s), got, want)
		}
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		ModeScan: "scan", ModeOffline: "offline", ModeOnline: "online",
		ModeAdaptive: "adaptive", ModeStochastic: "stochastic",
		ModeCCGI: "ccgi", ModeHolistic: "holistic",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %s", int(m), m.String())
		}
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("unknown mode string")
	}
}

func TestStatsNonCrackingModes(t *testing.T) {
	s, _ := buildStore(t, ModeScan, 1, 1000, 1000)
	defer s.Close()
	s.CountRange("a", 0, 10)
	st := s.Stats()
	if st.Pieces != 0 || st.Refinements != 0 {
		t.Errorf("scan stats = %+v, want zeros", st)
	}
}
