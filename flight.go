// The flight-recorder surface (DESIGN.md §11): every Store keeps a
// bounded lock-free ring of structured events — query timings,
// representation/strategy decisions, daemon refinements, WAL and
// checkpoint lifecycle — and a watchdog that baselines latency and
// convergence, dumping the ring to a checksummed flight-*.bin in the
// durable directory when an anomaly fires.

package holistic

import (
	"fmt"
	"io"
	"time"

	"holistic/internal/engine"
	"holistic/internal/obs"
	"holistic/internal/obs/flight"
)

// FlightDump encodes the store's current flight-recorder ring — every
// retained event plus the attribute intern table, CRC32C-checksummed —
// and writes it to w. It returns the number of bytes written. The
// format round-trips through flight.Decode; flightdump files written
// by the watchdog use the same encoding. Stores with flight recording
// disabled (Config.FlightEvents < 0) return an error.
func (s *Store) FlightDump(w io.Writer) (int, error) {
	if s.flight == nil {
		return 0, fmt.Errorf("holistic: flight recording is disabled")
	}
	var gen uint64
	if s.dur != nil {
		gen = s.dur.generation()
	}
	data := flight.Encode(s.flight, flight.TriggerManual, gen)
	n, err := w.Write(data)
	if err == nil {
		s.wd.NoteDump()
	}
	return n, err
}

// PriorFlightDumps lists the flight-dump file names that recovery
// found in the data directory at open — the post-mortems of earlier
// processes, oldest first. Purely in-memory stores return nil.
func (s *Store) PriorFlightDumps() []string {
	if s.dur == nil {
		return nil
	}
	return s.dur.priorFlightDumps()
}

// FlightStatus is the flight block of Store.Metrics.
type FlightStatus struct {
	// EventsRecorded is the lifetime event count; RingCapacity how many
	// of the most recent events the ring retains.
	EventsRecorded uint64 `json:"events_recorded"`
	RingCapacity   int    `json:"ring_capacity"`
	// DumpKeep is the configured on-disk dump retention of a durable
	// store (Config.FlightDumpKeep; the dump cooldown is inside
	// Watchdog).
	DumpKeep int `json:"dump_keep"`
	// Watchdog is the anomaly detector's rolling state.
	Watchdog flight.State `json:"watchdog"`
}

// flightStatus assembles the metrics block; nil when disabled.
func (s *Store) flightStatus() *FlightStatus {
	if s.flight == nil {
		return nil
	}
	return &FlightStatus{
		EventsRecorded: s.flight.Head(),
		RingCapacity:   s.flight.Cap(),
		DumpKeep:       s.cfg.flightDumpKeep(),
		Watchdog:       s.wd.State(),
	}
}

// flightState renders the ring and watchdog for the
// /debug/holistic/flight endpoint: JSON-decoded events (oldest first)
// plus the watchdog state and any prior on-disk dumps.
func (s *Store) flightState() any {
	events := s.flight.Snapshot()
	names := s.flight.Names()
	decoded := make([]map[string]any, len(events))
	for i, e := range events {
		decoded[i] = e.Fields(names)
	}
	return map[string]any{
		"ring_capacity":   s.flight.Cap(),
		"events_recorded": s.flight.Head(),
		"watchdog":        s.wd.State(),
		"prior_dumps":     s.PriorFlightDumps(),
		"events":          decoded,
	}
}

// stopWatchdog terminates the watchdog goroutine (idempotent).
func (s *Store) stopWatchdog() {
	if s.wdStop != nil {
		s.wdOnce.Do(func() { close(s.wdStop) })
	}
}

// watchdogLoop drives periodic watchdog observations until Close.
func (s *Store) watchdogLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.wdStop:
			return
		case <-t.C:
			s.watchdogTick()
		}
	}
}

// watchdogTick takes one observation — the cumulative merged latency
// digest, the daemon's convergence ratio and panic count — and, when
// the watchdog calls anomaly, records the trigger into the ring and
// dumps it to the durable directory.
func (s *Store) watchdogTick() {
	var hist obs.HistSnapshot
	s.met.MergedLatency(&hist)
	o := flight.Observation{Latency: &hist}
	s.mu.Lock()
	exec := s.exec
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	if h, ok := exec.(*engine.HolisticExecutor); ok {
		o.WorkerPanics = h.Daemon.WorkerPanics()
		if conv := h.Daemon.Convergence(); conv != nil {
			o.Convergence = conv.Ratio
			o.HaveConvergence = true
		}
	}
	v := s.wd.Observe(o)
	if v.Trigger == flight.TriggerNone {
		return
	}
	s.flight.RecordAnomaly(v.Trigger, v.WindowP99NS, v.BaselineP99NS, v.Convergence, v.WorkerPanics, v.Samples)
	if v.Dump && s.dur != nil {
		s.dur.flightDump(v.Trigger)
	}
}
