package holistic_test

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"holistic"
	"holistic/internal/obs/flight"
)

// Example demonstrates the zero-administration workflow: load columns,
// query, and let holistic indexing tune the physical design on idle CPU
// contexts.
func Example() {
	store := holistic.NewStore(holistic.Config{
		Mode:           holistic.ModeHolistic,
		Threads:        2,
		TuningInterval: time.Millisecond,
		Seed:           1,
	})
	defer store.Close()

	prices := make([]int64, 100_000)
	for i := range prices {
		prices[i] = int64(i * 7 % 10_000)
	}
	if err := store.AddIntColumn("price", prices); err != nil {
		fmt.Println(err)
		return
	}

	n, err := store.CountRange("price", 1000, 2000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d rows with 1000 <= price < 2000\n", n)
	// Output:
	// 10000 rows with 1000 <= price < 2000
}

// ExampleStore_Query demonstrates a multi-predicate conjunction with
// selectivity-ordered planning and late tuple reconstruction.
func ExampleStore_Query() {
	store := holistic.NewStore(holistic.Config{
		Mode:           holistic.ModeHolistic,
		Threads:        2,
		TuningInterval: time.Millisecond,
		Seed:           1,
	})
	defer store.Close()

	n := 100_000
	price := make([]int64, n)
	qty := make([]int64, n)
	day := make([]int64, n)
	for i := 0; i < n; i++ {
		price[i] = int64(i * 7 % 10_000)
		qty[i] = int64(i % 50)
		day[i] = int64(i % 365)
	}
	store.AddIntColumn("price", price)
	store.AddIntColumn("quantity", qty)
	store.AddIntColumn("day", day)

	// The planner drives the most selective conjunct through the
	// mode's access path; the rest probe positionally.
	count, err := store.Query().
		Where("day", 0, 31).        // January
		Where("price", 1000, 2000). // a price band
		Where("quantity", 0, 10).   // small orders
		Count()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d qualifying rows\n", count)
	// Output:
	// 146 qualifying rows
}

// ExampleQuery_Join demonstrates an equi-join between two stores:
// lineitems join their orders, with aggregate and grouped terminals
// over either side's columns.
func ExampleQuery_Join() {
	orders := holistic.NewStore(holistic.Config{Mode: holistic.ModeHolistic, Threads: 2, TuningInterval: time.Millisecond, Seed: 1})
	items := holistic.NewStore(holistic.Config{Mode: holistic.ModeHolistic, Threads: 2, TuningInterval: time.Millisecond, Seed: 1})
	defer orders.Close()
	defer items.Close()

	orders.AddIntColumn("o_id", []int64{0, 1, 2, 3})
	orders.AddIntColumn("region", []int64{0, 1, 0, 1})
	items.AddIntColumn("order", []int64{0, 0, 1, 2, 2, 2})
	items.AddIntColumn("price", []int64{10, 20, 30, 40, 50, 60})

	// Total revenue of every item whose order exists.
	revenue, err := items.Query().
		Join(orders.Query(), "order", "o_id").
		Sum("price")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("revenue %d\n", revenue)

	// Revenue by the order's region: a join→group pipeline — the group
	// key comes from the orders side, the aggregate from the items side.
	res, err := items.Query().
		Join(orders.Query(), "order", "o_id").
		GroupBy("region").
		Aggregate(holistic.Count(), holistic.Sum("price"))
	if err != nil {
		fmt.Println(err)
		return
	}
	for g := 0; g < res.Len(); g++ {
		fmt.Printf("region %d: %d items, revenue %d\n", res.Keys[0][g], res.Aggs[0][g], res.Aggs[1][g])
	}
	// Output:
	// revenue 210
	// region 0: 5 items, revenue 180
	// region 1: 1 items, revenue 30
}

// ExampleQuery_GroupBy demonstrates grouped aggregation: a fused
// count/sum/max plan over the rows surviving a range predicate, grouped
// by region, returned as an ordered result table.
func ExampleQuery_GroupBy() {
	store := holistic.NewStore(holistic.Config{
		Mode:           holistic.ModeHolistic,
		Threads:        2,
		TuningInterval: time.Millisecond,
		Seed:           1,
	})
	defer store.Close()

	n := 100_000
	region := make([]int64, n) // dictionary codes 0..3
	sales := make([]int64, n)
	day := make([]int64, n)
	for i := 0; i < n; i++ {
		region[i] = int64(i % 4)
		sales[i] = int64(i*13%997 + 1)
		day[i] = int64(i % 365)
	}
	store.AddIntColumn("region", region)
	store.AddIntColumn("sales", sales)
	store.AddIntColumn("day", day)

	res, err := store.Query().
		Where("day", 0, 31). // January
		GroupBy("region").
		Aggregate(holistic.Count(), holistic.Sum("sales"), holistic.Max("sales"))
	if err != nil {
		fmt.Println(err)
		return
	}
	for g := 0; g < res.Len(); g++ {
		fmt.Printf("region %d: %d rows, sum %d, max %d\n",
			res.Keys[0][g], res.Aggs[0][g], res.Aggs[1][g], res.Aggs[2][g])
	}
	// Output:
	// region 0: 2123 rows, sum 1058619, max 997
	// region 1: 2124 rows, sum 1057471, max 997
	// region 2: 2124 rows, sum 1062035, max 997
	// region 3: 2123 rows, sum 1058219, max 997
}

// ExampleStore_Metrics demonstrates the telemetry snapshot: lifetime
// query counters with latency percentiles, the physical choices made,
// the refinement-economics balance sheet, and (under ModeHolistic) the
// daemon's convergence state. The same snapshot is served per store on
// /debug/holistic (cmd/holisticserve).
func ExampleStore_Metrics() {
	store := holistic.NewStore(holistic.Config{Mode: holistic.ModeAdaptive, Threads: 1})
	defer store.Close()

	vals := make([]int64, 50_000)
	for i := range vals {
		vals[i] = int64(i * 31 % 9973)
	}
	store.AddIntColumn("x", vals)
	store.AddIntColumn("y", vals)

	for lo := int64(0); lo < 3000; lo += 1000 {
		store.Query().Where("x", lo, lo+2000).Where("y", 0, 9000).Count()
	}

	m := store.Metrics()
	lat := m.Query.Latency["count"]
	fmt.Printf("mode %s: %d queries, %d count latencies recorded, p99 > 0: %v\n",
		m.Mode, m.Query.Queries, lat.Count, lat.P99US > 0)
	fmt.Printf("bitmap selections: %v, cracker builds: %d\n",
		m.Query.Representations["bitmap"] > 0, m.Exec.CrackerBuilds)
	// Economics: every query's driving conjunct feeds the cost-benefit
	// ledger and both predicates feed the access heatmaps; without a
	// refinement daemon (ModeAdaptive) nothing is ever invested.
	ec := m.Economics
	fmt.Printf("economics: %d drive samples on %q, %d access heatmaps, invested %dns\n",
		ec.Indexes[0].DriveQueries, ec.Indexes[0].Name, len(ec.Access), ec.InvestedNS)
	// Output:
	// mode adaptive: 3 queries, 3 count latencies recorded, p99 > 0: true
	// bitmap selections: true, cracker builds: 1
	// economics: 3 drive samples on "x", 2 access heatmaps, invested 0ns
}

// ExampleStore_FlightDump demonstrates the flight recorder: every
// query, representation decision and strategy choice lands in a
// bounded lock-free ring, which FlightDump encodes as a checksummed
// frame that flight.Decode round-trips. The watchdog writes the same
// format into the data directory when an SLO anomaly fires.
func ExampleStore_FlightDump() {
	store := holistic.NewStore(holistic.Config{Mode: holistic.ModeAdaptive, Threads: 1, Seed: 1})
	defer store.Close()

	vals := make([]int64, 50_000)
	for i := range vals {
		vals[i] = int64(i * 31 % 9973)
	}
	store.AddIntColumn("x", vals)
	store.AddIntColumn("y", vals)
	for lo := int64(0); lo < 3000; lo += 1000 {
		store.Query().Where("x", lo, lo+2000).Where("y", 0, 9000).Count()
	}

	var buf bytes.Buffer
	if _, err := store.FlightDump(&buf); err != nil {
		fmt.Println(err)
		return
	}
	d, err := flight.Decode(buf.Bytes())
	if err != nil {
		fmt.Println(err)
		return
	}
	var queries, decisions int
	for _, e := range d.Events {
		switch e.Kind {
		case flight.EvQuery:
			queries++
		case flight.EvRep, flight.EvStrategy:
			decisions++
		}
	}
	fmt.Printf("trigger %s: %d query events, decision events recorded: %v\n",
		d.Trigger, queries, decisions > 0)
	// Output:
	// trigger manual: 3 query events, decision events recorded: true
}

// ExampleOpenStore persists a store to a data directory, reopens it
// after a (clean) shutdown, and shows the recovered adaptive state:
// the second open restores the cracked index the first session's
// queries built, so no re-cracking is needed.
func ExampleOpenStore() {
	dir, err := os.MkdirTemp("", "holistic-example-*")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	cfg := holistic.Config{Mode: holistic.ModeAdaptive, Threads: 1, SnapshotInterval: -1}

	store, err := holistic.OpenStore(dir, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	vals := make([]int64, 50_000)
	for i := range vals {
		vals[i] = int64(i * 31 % 9973)
	}
	store.AddIntColumn("price", vals)
	store.Insert("price", 123)                             // logged to the WAL
	n, _ := store.Query().Where("price", 100, 200).Count() // cracks the column
	fmt.Println("first session count:", n)
	store.Close() // checkpoint + clean-shutdown marker

	reopened, err := holistic.OpenStore(dir, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer reopened.Close()
	rec := reopened.Metrics().Recovery
	fmt.Println("clean start:", rec.CleanStart, "replayed:", rec.ReplayedRecords,
		"restored indexes:", rec.RestoredIndexes)
	n, _ = reopened.Query().Where("price", 100, 200).Count()
	fmt.Println("recovered count:", n)
	// Output:
	// first session count: 504
	// clean start: true replayed: 0 restored indexes: 1
	// recovered count: 504
}
