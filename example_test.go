package holistic_test

import (
	"fmt"
	"time"

	"holistic"
)

// Example demonstrates the zero-administration workflow: load columns,
// query, and let holistic indexing tune the physical design on idle CPU
// contexts.
func Example() {
	store := holistic.NewStore(holistic.Config{
		Mode:           holistic.ModeHolistic,
		Threads:        2,
		TuningInterval: time.Millisecond,
		Seed:           1,
	})
	defer store.Close()

	prices := make([]int64, 100_000)
	for i := range prices {
		prices[i] = int64(i * 7 % 10_000)
	}
	if err := store.AddIntColumn("price", prices); err != nil {
		fmt.Println(err)
		return
	}

	n, err := store.CountRange("price", 1000, 2000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d rows with 1000 <= price < 2000\n", n)
	// Output:
	// 10000 rows with 1000 <= price < 2000
}
