package holistic

import (
	"math/rand"
	"sort"
	"testing"

	"holistic/internal/workload"
)

// joinStores builds the two relations of the join differential test
// from workload.GenerateJoin: L(k, v) and R(rk, w), keys overlapping
// and duplicated so every fan-out shape occurs.
func joinStores(t *testing.T, mode Mode, seed int64) (l, r *Store, lo, ro *conjOracle) {
	t.Helper()
	lk, rk := workload.GenerateJoin(workload.JoinConfig{
		LeftRows: 360, RightRows: 520, Keys: 120,
		Overlap: 0.7, Fan: workload.FanManyToMany, Skew: 0.8, Seed: seed,
	})
	rng := rand.New(rand.NewSource(seed + 1))
	payload := func(n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = rng.Int63n(1000)
		}
		return out
	}
	lv, rw := payload(len(lk)), payload(len(rk))
	mk := func(kName, vName string, keys, vals []int64) (*Store, *conjOracle) {
		cfg := storeConfig(mode)
		cfg.Seed = seed
		s := NewStore(cfg)
		if err := s.AddIntColumn(kName, keys); err != nil {
			t.Fatal(err)
		}
		if err := s.AddIntColumn(vName, vals); err != nil {
			t.Fatal(err)
		}
		return s, newConjOracle([][]int64{keys, vals})
	}
	l, lo = mk("k", "v", lk, lv)
	r, ro = mk("rk", "w", rk, rw)
	return l, r, lo, ro
}

// oracleJoinPairs crosses the two oracles: rows qualifying their side's
// predicates (attribute 0 is the join key, 1 the payload) with live
// join-key values, matched on equality. lExtra/rExtra additionally
// require a live value in the payload attribute (the Sum/GroupBy
// presence rule).
func oracleJoinPairs(lo, ro *conjOracle, lp, rp []conjPred, lExtra, rExtra bool) [][2]uint32 {
	extras := func(need bool) []int {
		if need {
			return []int{1}
		}
		return nil
	}
	var pairs [][2]uint32
	lq := lo.evaluate(lp, extras(lExtra))
	rq := ro.evaluate(rp, extras(rExtra))
	for _, li := range lq {
		lk, ok := lo.at(0, int(li))
		if !ok {
			continue
		}
		for _, ri := range rq {
			rk, ok := ro.at(0, int(ri))
			if !ok {
				continue
			}
			if lk == rk {
				pairs = append(pairs, [2]uint32{li, ri})
			}
		}
	}
	return pairs
}

// TestJoinMatchesOracleAllModes is the randomized differential test of
// Store.Query().Join: joins between two stores in every mode, with and
// without per-side predicates, with interleaved inserts, deletes and
// updates on both relations where the mode supports them, checked
// against a nested-loop oracle over the tracked logical state.
func TestJoinMatchesOracleAllModes(t *testing.T) {
	modes := []Mode{ModeScan, ModeOffline, ModeOnline, ModeAdaptive, ModeStochastic, ModeCCGI, ModeHolistic}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			l, r, lo, ro := joinStores(t, mode, 91+int64(mode))
			defer l.Close()
			defer r.Close()
			l.Prepare()
			r.Prepare()
			canUpdate := mode == ModeAdaptive || mode == ModeStochastic || mode == ModeHolistic
			rng := rand.New(rand.NewSource(17 + int64(mode)))

			mutate := func(s *Store, o *conjOracle, names [2]string) {
				a := rng.Intn(2)
				switch rng.Intn(3) {
				case 0:
					v := rng.Int63n(1000)
					if err := s.Insert(names[a], v); err != nil {
						t.Fatal(err)
					}
					o.insert(a, v)
				case 1:
					for tries := 0; tries < 10; tries++ {
						v, ok := o.at(a, rng.Intn(len(o.vals[a])))
						if !ok {
							continue
						}
						row, _ := o.lowestLiveRow(a, v)
						if err := s.Delete(names[a], v); err != nil {
							t.Fatal(err)
						}
						o.dead[a][row] = true
						break
					}
				case 2:
					for tries := 0; tries < 10; tries++ {
						v, ok := o.at(a, rng.Intn(len(o.vals[a])))
						if !ok {
							continue
						}
						row, _ := o.lowestLiveRow(a, v)
						nv := rng.Int63n(1000)
						if err := s.Update(names[a], v, nv); err != nil {
							t.Fatal(err)
						}
						o.vals[a][row] = nv
						break
					}
				}
			}

			for q := 0; q < 18; q++ {
				if canUpdate && q%3 == 1 {
					mutate(l, lo, [2]string{"k", "v"})
					mutate(r, ro, [2]string{"rk", "w"})
				}

				var lp, rp []conjPred
				lq := l.Query()
				rq := r.Query()
				if rng.Intn(3) > 0 {
					hi := rng.Int63n(900) + 100
					lp = append(lp, conjPred{attr: 1, lo: 0, hi: hi})
					lq = lq.Where("v", 0, hi)
				}
				if rng.Intn(3) > 0 {
					lo2 := rng.Int63n(500)
					rp = append(rp, conjPred{attr: 1, lo: lo2, hi: 1000})
					rq = rq.Where("w", lo2, 1000)
				}
				j := lq.Join(rq, "k", "rk")

				countPairs := oracleJoinPairs(lo, ro, lp, rp, false, false)
				n, err := j.Count()
				if err != nil {
					t.Fatal(err)
				}
				if n != int64(len(countPairs)) {
					t.Fatalf("query %d: count = %d, want %d", q, n, len(countPairs))
				}

				gotL, gotR, err := j.Pairs()
				if err != nil {
					t.Fatal(err)
				}
				if len(gotL) != len(countPairs) {
					t.Fatalf("query %d: %d pairs, want %d", q, len(gotL), len(countPairs))
				}
				sort.Slice(countPairs, func(a, b int) bool {
					if countPairs[a][0] != countPairs[b][0] {
						return countPairs[a][0] < countPairs[b][0]
					}
					return countPairs[a][1] < countPairs[b][1]
				})
				for i := range gotL {
					if gotL[i] != countPairs[i][0] || gotR[i] != countPairs[i][1] {
						t.Fatalf("query %d: pairs[%d] = (%d,%d), want %v", q, i, gotL[i], gotR[i], countPairs[i])
					}
				}

				sumPairs := oracleJoinPairs(lo, ro, lp, rp, false, true)
				var wantSum int64
				for _, pr := range sumPairs {
					v, _ := ro.at(1, int(pr[1]))
					wantSum += v
				}
				s, err := j.Sum("w")
				if err != nil {
					t.Fatal(err)
				}
				if s != wantSum {
					t.Fatalf("query %d: sum(w) = %d, want %d", q, s, wantSum)
				}

				// Grouped: by the left payload, counting pairs and summing
				// the right payload — requires live v and w at the pair.
				gPairs := oracleJoinPairs(lo, ro, lp, rp, true, true)
				wantCnt := map[int64]int64{}
				wantGSum := map[int64]int64{}
				for _, pr := range gPairs {
					g, _ := lo.at(1, int(pr[0]))
					w, _ := ro.at(1, int(pr[1]))
					wantCnt[g]++
					wantGSum[g] += w
				}
				res, err := j.GroupBy("v").Aggregate(Count(), Sum("w"))
				if err != nil {
					t.Fatal(err)
				}
				if res.Len() != len(wantCnt) {
					t.Fatalf("query %d: %d groups, want %d", q, res.Len(), len(wantCnt))
				}
				for g := 0; g < res.Len(); g++ {
					k := res.Keys[0][g]
					if res.Aggs[0][g] != wantCnt[k] || res.Aggs[1][g] != wantGSum[k] {
						t.Fatalf("query %d group %d: (%d,%d), want (%d,%d)",
							q, k, res.Aggs[0][g], res.Aggs[1][g], wantCnt[k], wantGSum[k])
					}
				}
			}
		})
	}
}

// TestJoinBuilderMisc covers the public builder's resolution rules:
// ambiguous and unknown attributes, closed stores.
func TestJoinBuilderMisc(t *testing.T) {
	l, r, _, _ := joinStores(t, ModeAdaptive, 7)
	defer r.Close()
	if _, err := l.Query().Join(r.Query(), "k", "rk").Sum("nope"); err == nil {
		t.Error("unknown sum attribute did not error")
	}
	// "v" only on the left, "w" only on the right: both resolve.
	if _, err := l.Query().Join(r.Query(), "k", "rk").Sum("v"); err != nil {
		t.Error(err)
	}
	// An attribute present on both sides is ambiguous.
	l2 := NewStore(Config{Mode: ModeScan})
	defer l2.Close()
	if err := l2.AddIntColumn("w", []int64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Query().Join(r.Query(), "w", "rk").Sum("w"); err == nil {
		t.Error("ambiguous attribute did not error")
	}
	l.Close()
	if _, err := l.Query().Join(r.Query(), "k", "rk").Count(); err == nil {
		t.Error("join on a closed store did not error")
	}
}
