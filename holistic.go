// Package holistic is a main-memory column-store library with holistic
// indexing: always-on, zero-administration adaptive index tuning that
// exploits idle CPU resources, reproducing "Holistic Indexing in
// Main-memory Column-stores" (Petraki, Idreos, Manegold; SIGMOD 2015).
//
// A Store holds integer columns and answers range selections. Depending
// on the configured Mode it scans, uses full (offline/online) indexing,
// cracks adaptively, or — the paper's contribution — cracks adaptively
// while a background daemon continuously refines the index space
// whenever CPU contexts are idle:
//
//	store := holistic.NewStore(holistic.Config{Mode: holistic.ModeHolistic})
//	store.AddIntColumn("price", prices)
//	defer store.Close()
//	n, _ := store.CountRange("price", 100, 200) // cracks as a side effect
//
// Beyond counting, every mode answers aggregates and materialization over
// the same range predicates — SumRange, MinMaxRange and SelectRows — with
// the work pushed down into the mode's native access path (cracked-piece
// folds, binary-search slices, parallel chunked scans), and with pending
// insertions merged so results stay correct under updates.
//
// Multi-predicate conjunctions run through Store.Query: the planner
// orders the range conjuncts by estimated selectivity, drives the most
// selective one through the mode's access path and refines the
// candidate rows against the rest by positional probes (late tuple
// reconstruction); under ModeHolistic every conjunct feeds the
// daemon's index space so refinement spreads across all touched
// columns. The cracking modes also accept Delete and Update as pending
// operations merged lazily like inserts. See DESIGN.md §4.
//
// Grouped aggregation chains GroupBy and Aggregate onto a query:
// fused COUNT/SUM/MIN/MAX plans over the selection, executed with a
// per-query physical strategy (dense bit-packed, hash, or sort-based
// index-clustered grouping — the latter is how background refinement
// pays off beyond selects). See DESIGN.md §6.
//
// Equi-joins chain Join onto a query, matching it against another
// query (typically over a second Store) with Count, Sum, Pairs and
// GroupBy/Aggregate terminals over either side's columns. Two physical
// strategies exist — a radix-partitioned open-addressing hash join and
// an index-clustered merge join that intersects cluster value ranges
// with no hash table at all — and the join attributes of both
// relations feed the holistic daemons, so idle refinement converts
// hash joins into merge joins over time. See DESIGN.md §7.
//
// Non-integer attributes map onto int64 the way fixed-width column-stores
// do it: dates as day numbers, decimals as scaled integers, strings as
// dictionary codes (see internal/column.Dict).
package holistic

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"holistic/internal/column"
	"holistic/internal/cracking"
	"holistic/internal/engine"
	"holistic/internal/groupby"
	"holistic/internal/holistic"
	"holistic/internal/join"
	"holistic/internal/obs"
	"holistic/internal/obs/econ"
	"holistic/internal/obs/flight"
	"holistic/internal/query"
	"holistic/internal/stats"
)

// Mode selects the indexing approach of a Store.
type Mode int

const (
	// ModeScan answers queries with parallel scans; no indexing.
	ModeScan Mode = iota
	// ModeOffline pre-sorts every column (call Prepare) and answers with
	// binary search.
	ModeOffline
	// ModeOnline scans for an epoch of queries, then sorts all columns.
	ModeOnline
	// ModeAdaptive cracks columns as a side effect of queries (database
	// cracking with the parallel vectorized kernel).
	ModeAdaptive
	// ModeStochastic is ModeAdaptive plus one auxiliary random crack per
	// query (stochastic cracking).
	ModeStochastic
	// ModeCCGI is the chunked coarse-granular multi-core baseline.
	ModeCCGI
	// ModeHolistic is ModeAdaptive plus the holistic indexing daemon:
	// idle CPU contexts continuously refine the index space.
	ModeHolistic
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeScan:
		return "scan"
	case ModeOffline:
		return "offline"
	case ModeOnline:
		return "online"
	case ModeAdaptive:
		return "adaptive"
	case ModeStochastic:
		return "stochastic"
	case ModeCCGI:
		return "ccgi"
	case ModeHolistic:
		return "holistic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Strategy picks which index the holistic daemon refines next (the
// W1-W4 strategies of the paper; random is the recommended default).
type Strategy int

const (
	// StrategyRandom is W4: a uniformly random index. Robust default.
	StrategyRandom Strategy = iota
	// StrategyDistance is W1: the index farthest from optimal.
	StrategyDistance
	// StrategyFrequency is W2: distance weighted by access frequency.
	StrategyFrequency
	// StrategyMisses is W3: W2 discounted by exact-hit frequency.
	StrategyMisses
)

func (s Strategy) internal() stats.Strategy {
	switch s {
	case StrategyDistance:
		return stats.W1
	case StrategyFrequency:
		return stats.W2
	case StrategyMisses:
		return stats.W3
	default:
		return stats.W4
	}
}

// Config tunes a Store. The zero value is a usable adaptive-indexing
// configuration; set Mode to choose another approach.
type Config struct {
	// Mode selects the indexing approach (default ModeAdaptive).
	Mode Mode
	// Threads is the hardware-context budget (default 2): scan and sort
	// parallelism, and — under ModeHolistic — the pool split between
	// user queries and holistic workers.
	Threads int
	// UserThreads caps the contexts one user query occupies under
	// ModeHolistic (default Threads/2); the rest feed the daemon.
	UserThreads int
	// OnlineEpoch is the monitoring epoch of ModeOnline in queries
	// (default 100).
	OnlineEpoch int
	// L1CacheBytes is the L1 data cache size defining the optimal piece
	// size of Equation 1 (default 32 KiB).
	L1CacheBytes int
	// TuningInterval is the daemon's CPU-load measurement window
	// (default 1s, the paper's choice; benchmarks use milliseconds).
	TuningInterval time.Duration
	// RefinementsPerWorker is x, the refinement actions per activated
	// worker (default 16, the paper's sweet spot).
	RefinementsPerWorker int
	// Strategy picks the index-decision strategy (default random/W4).
	Strategy Strategy
	// StorageBudget bounds the materialized index space in bytes under
	// ModeHolistic; 0 = unlimited. LFU indices are evicted to fit.
	StorageBudget int64
	// NoRowIDs disables rowid tracking in the cracking-based modes
	// (adaptive, stochastic, CCGI, holistic), reclaiming 4 bytes/value
	// of index space and the lockstep rowid permutation on every crack.
	// SelectRows then returns an error under those modes — unlike the
	// sorted modes, a cracker column cannot recover the permutation
	// later, so the choice must be made up front.
	NoRowIDs bool
	// Seed fixes all randomized choices for reproducibility.
	Seed int64
	// WALSync selects the write-ahead-log fsync policy of a store opened
	// with OpenStore: group commit (default), an fsync per record, or
	// none. Ignored by NewStore.
	WALSync WALSync
	// SnapshotInterval is the background snapshot cadence of a durable
	// store (default 10s); negative disables background snapshots
	// (Checkpoint and Close still write them). Ignored by NewStore.
	SnapshotInterval time.Duration
	// DataOnlyRecovery makes OpenStore restore the logical column data
	// but discard the persisted adaptive state, so every index rebuilds
	// from scratch — the cold start the recover benchmark compares
	// adaptive-state restore against. Ignored by NewStore.
	DataOnlyRecovery bool
	// FlightEvents sizes the flight recorder's event ring (rounded up
	// to a power of two; default 4096 events of 64 bytes each).
	// Negative disables flight recording entirely.
	FlightEvents int
	// SLOP99 is the absolute p99 latency objective the watchdog
	// enforces: a rolling window whose p99 exceeds it triggers an
	// anomaly flight dump. 0 leaves only the relative rule (p99 above
	// a multiple of the rolling baseline).
	SLOP99 time.Duration
	// WatchdogInterval is the cadence of the watchdog's baseline
	// observations (default 1s); negative disables the watchdog.
	WatchdogInterval time.Duration
	// FlightDumpCooldown is the minimum gap between anomaly-triggered
	// flight dumps, bounding dump storms while an incident is ongoing
	// (<= 0 selects 30s).
	FlightDumpCooldown time.Duration
	// FlightDumpKeep bounds the flight-dump files a durable store keeps
	// on disk; the writer self-prunes the oldest beyond it (default 8).
	FlightDumpKeep int
	// TimelineInterval is the cadence of the in-process time-series
	// store: every interval the store samples its cumulative counters
	// and latency histograms into the bounded ring behind
	// /debug/holistic/timeline (default 5s); negative disables the
	// timeline.
	TimelineInterval time.Duration
	// TimelineSamples is the time-series ring capacity in windows
	// (default 512 — about 42 minutes of history at the default
	// interval; minimum 2).
	TimelineSamples int
}

func (c Config) threads() int {
	if c.Threads < 1 {
		return 2
	}
	return c.Threads
}

// watchdogInterval resolves the watchdog observation cadence: 1s by
// default, disabled when negative.
func (c Config) watchdogInterval() time.Duration {
	if c.WatchdogInterval == 0 {
		return time.Second
	}
	if c.WatchdogInterval < 0 {
		return 0
	}
	return c.WatchdogInterval
}

// timelineInterval resolves the time-series sampling cadence: 5s by
// default, disabled when negative.
func (c Config) timelineInterval() time.Duration {
	if c.TimelineInterval == 0 {
		return 5 * time.Second
	}
	if c.TimelineInterval < 0 {
		return 0
	}
	return c.TimelineInterval
}

// timelineSamples resolves the time-series ring capacity (default 512;
// the ring itself clamps to a minimum of 2).
func (c Config) timelineSamples() int {
	if c.TimelineSamples <= 0 {
		return 512
	}
	return c.TimelineSamples
}

// flightDumpKeep resolves the on-disk flight-dump retention (default 8).
func (c Config) flightDumpKeep() int {
	if c.FlightDumpKeep <= 0 {
		return 8
	}
	return c.FlightDumpKeep
}

func (c Config) l1Values() int {
	if c.L1CacheBytes <= 0 {
		return stats.DefaultL1Values
	}
	return c.L1CacheBytes / 8
}

// ErrClosed is returned by every query on a store whose Close has been
// called.
var ErrClosed = errors.New("holistic: store is closed")

// Store is a main-memory column-store over int64 columns.
type Store struct {
	cfg Config

	// met and execMet are the store's lifetime telemetry aggregates
	// (query latency histograms and access-path counters); obsName is
	// the name the store is published under on /debug/holistic.
	met     *obs.QueryMetrics
	execMet *obs.ExecMetrics
	obsName string

	// dur is the persistence engine of a store opened with OpenStore;
	// nil for purely in-memory stores.
	dur *durability

	// flight is the black-box event ring (nil when disabled); wd the
	// watchdog that decides when to dump it. See DESIGN.md §11.
	flight *flight.Recorder
	wd     *flight.Watchdog
	wdStop chan struct{}
	wdOnce sync.Once

	// ec is the refinement-economics recorder (cost-benefit ledger plus
	// access/refine heatmaps) shared by the query runner, executor and
	// daemon; ts is the periodic time-series ring behind
	// /debug/holistic/timeline. See DESIGN.md §12.
	ec     *econ.Econ
	ts     *obs.TimeSeries
	tsStop chan struct{}
	tsOnce sync.Once

	mu     sync.Mutex
	table  *engine.Table
	exec   engine.Executor
	qr     *query.Runner
	closed bool
	// traceSink is the owned JSONL trace sink of SetTraceJSONL /
	// SetTraceJSONLFile, kept so Close can flush it and Metrics can
	// surface its write-error counters.
	traceSink *obs.JSONLSink
}

// storeSeq numbers stores for the process-wide metrics registry.
var storeSeq atomic.Int64

// NewStore creates an empty store. Every store registers itself as a
// metrics source, so its Metrics snapshot appears on the
// /debug/holistic endpoint (see DESIGN.md §9) until Close.
func NewStore(cfg Config) *Store {
	s := &Store{
		cfg:     cfg,
		table:   engine.NewTable("store"),
		met:     obs.NewQueryMetrics(),
		execMet: &obs.ExecMetrics{},
	}
	s.obsName = "store-" + strconv.FormatInt(storeSeq.Add(1), 10)
	s.ec = econ.New()
	obs.RegisterSource(s.obsName, func() any { return s.Metrics() })
	obs.RegisterProm(s.obsName, s.promCollect)
	if cfg.FlightEvents >= 0 {
		s.flight = flight.NewRecorder(cfg.FlightEvents)
		s.wd = flight.NewWatchdog(flight.WatchdogConfig{
			AbsoluteP99: cfg.SLOP99,
			Cooldown:    cfg.FlightDumpCooldown,
		})
		obs.RegisterFlight(s.obsName, s.flightState)
		if iv := cfg.watchdogInterval(); iv > 0 {
			s.wdStop = make(chan struct{})
			go s.watchdogLoop(iv)
		}
	}
	if iv := cfg.timelineInterval(); iv > 0 {
		s.ts = obs.NewTimeSeries(cfg.timelineSamples(), timelineCounters, timelineHists)
		obs.RegisterTimeline(s.obsName, func() any { return s.ts.Snapshot() })
		s.tsStop = make(chan struct{})
		go s.timelineLoop(iv)
	}
	return s
}

// AddIntColumn adds a named column. Columns must be added before the
// first query; all columns must have equal length.
func (s *Store) AddIntColumn(name string, values []int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.exec != nil {
		return fmt.Errorf("holistic: cannot add column %q after the first query", name)
	}
	return s.table.AddColumn(column.New(name, values))
}

// executor builds the mode's executor on first use.
func (s *Store) executor() (engine.Executor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.exec == nil {
		s.exec = s.build()
		if ins, ok := s.exec.(engine.Instrumented); ok {
			ins.SetExecMetrics(s.execMet)
		}
		if h, ok := s.exec.(*engine.HolisticExecutor); ok {
			h.Daemon.SetFlight(s.flight)
			h.SetEcon(s.ec)
		}
		if s.dur != nil {
			if err := s.dur.attachExec(s.exec); err != nil {
				return nil, err
			}
		}
	}
	return s.exec, nil
}

func (s *Store) build() engine.Executor {
	threads := s.cfg.threads()
	crackCfg := cracking.Config{
		Kernel:          cracking.KernelVectorized,
		ParallelWorkers: threads,
		WithRows:        !s.cfg.NoRowIDs, // SelectRows materializes base positions
		Seed:            s.cfg.Seed,
	}
	switch s.cfg.Mode {
	case ModeScan:
		return engine.NewScanExecutor(s.table, threads)
	case ModeOffline:
		return engine.NewOfflineExecutor(s.table, threads)
	case ModeOnline:
		return engine.NewOnlineExecutor(s.table, threads, s.cfg.OnlineEpoch)
	case ModeStochastic:
		crackCfg.Stochastic = true
		return engine.NewAdaptiveExecutor(s.table, crackCfg, "stochastic")
	case ModeCCGI:
		return engine.NewCCGIExecutor(s.table, threads, 64, cracking.Config{WithRows: !s.cfg.NoRowIDs, Seed: s.cfg.Seed})
	case ModeHolistic:
		user := s.cfg.UserThreads
		if user < 1 {
			user = threads / 2
		}
		if user < 1 {
			user = 1
		}
		crackCfg.ParallelWorkers = user
		return engine.NewHolisticExecutor(s.table, engine.HolisticConfig{
			Cracking: crackCfg,
			Daemon: holistic.Config{
				Interval:      s.cfg.TuningInterval,
				Refinements:   s.cfg.RefinementsPerWorker,
				Strategy:      s.cfg.Strategy.internal(),
				Seed:          s.cfg.Seed,
				StorageBudget: s.cfg.StorageBudget,
			},
			L1Values:    s.cfg.l1Values(),
			Contexts:    threads,
			UserThreads: user,
			StatsSeed:   s.cfg.Seed,
		})
	default:
		return engine.NewAdaptiveExecutor(s.table, crackCfg, "")
	}
}

// Prepare performs the mode's upfront work: under ModeOffline it sorts
// every column now (otherwise the first query on each attribute pays the
// sort). Other modes need no preparation. Prepare on a closed store is a
// no-op.
func (s *Store) Prepare() {
	exec, err := s.executor()
	if err != nil {
		return
	}
	if off, ok := exec.(*engine.OfflineExecutor); ok {
		off.PrepareAll()
	}
}

// CountRange answers "select count(*) where lo <= attr < hi", building or
// refining the mode's index structures as a side effect.
func (s *Store) CountRange(attr string, lo, hi int64) (int, error) {
	exec, err := s.executor()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	n, err := exec.Count(attr, lo, hi)
	s.recordOp(obs.OpCount, start)
	return n, err
}

// recordOp folds one single-predicate range operation into the store's
// lifetime telemetry (query count plus the per-operation latency
// histogram).
//
//holistic:noalloc
func (s *Store) recordOp(op obs.Op, start time.Time) {
	s.met.NextSeq()
	s.met.RecordOp(op, time.Since(start).Nanoseconds())
}

// SumRange answers "select sum(attr) where lo <= attr < hi", pushing the
// fold down into the mode's access path (cracked pieces, sorted slices or
// parallel scan chunks) and merging pending insertions that fall inside
// the range first.
func (s *Store) SumRange(attr string, lo, hi int64) (int64, error) {
	exec, err := s.executor()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	v, err := exec.Sum(attr, lo, hi)
	s.recordOp(obs.OpSum, start)
	return v, err
}

// MinMaxRange answers "select min(attr), max(attr) where lo <= attr < hi";
// ok is false when no value qualifies.
func (s *Store) MinMaxRange(attr string, lo, hi int64) (mn, mx int64, ok bool, err error) {
	exec, err := s.executor()
	if err != nil {
		return 0, 0, false, err
	}
	start := time.Now()
	mn, mx, ok, err = exec.MinMax(attr, lo, hi)
	s.recordOp(obs.OpMinMax, start)
	return mn, mx, ok, err
}

// SelectRows materializes the base row ids of the qualifying tuples, in
// unspecified order — the position list late tuple reconstruction feeds
// to project operators. Rows appended by Insert continue the base
// position sequence.
func (s *Store) SelectRows(attr string, lo, hi int64) ([]uint32, error) {
	exec, err := s.executor()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rows, err := exec.SelectRows(attr, lo, hi)
	s.recordOp(obs.OpRows, start)
	return rows, err
}

// Insert appends a value to a column as a pending insertion, merged into
// the adaptive index lazily (Ripple). Supported by the adaptive,
// stochastic and holistic modes.
func (s *Store) Insert(attr string, v int64) error {
	exec, err := s.executor()
	if err != nil {
		return err
	}
	if ins, ok := exec.(engine.Inserter); ok {
		if s.dur != nil {
			return s.dur.loggedInsert(ins, attr, v)
		}
		return ins.Insert(attr, v)
	}
	return fmt.Errorf("holistic: mode %v does not support inserts", s.cfg.Mode)
}

// Delete removes attr's value from the row currently holding v — the
// lowest such row id when v occurs more than once — as a pending
// deletion merged lazily like inserts. Like Insert, it is a
// per-attribute operation: the row keeps its values in other
// attributes and only stops qualifying for predicates (and
// aggregation) on attr. The merge targets the resolved row, so
// materialized results and conjunctive probes stay consistent even for
// duplicated values (under Config.NoRowIDs the merge falls back to
// removing an unspecified occurrence; multiset counts and aggregates
// are exact either way). Resolving the row scans the attribute once —
// updates are expected in the paper's small batches, not bulk loads.
// Supported by the adaptive, stochastic and holistic modes; the sorted
// and scan modes have no pending-update machinery (their index is the
// data) and return an error.
func (s *Store) Delete(attr string, v int64) error {
	exec, err := s.executor()
	if err != nil {
		return err
	}
	if d, ok := exec.(engine.Deleter); ok {
		if s.dur != nil {
			return s.dur.loggedDelete(d, attr, v)
		}
		return d.Delete(attr, v)
	}
	return fmt.Errorf("holistic: mode %v does not support deletes", s.cfg.Mode)
}

// Update changes the tuple whose current value in attr is oldV (the
// lowest such row id) to newV — a pending deletion followed by a
// pending insertion at the same row id, so the tuple keeps its
// identity. Supported by the same modes as Delete.
func (s *Store) Update(attr string, oldV, newV int64) error {
	exec, err := s.executor()
	if err != nil {
		return err
	}
	if u, ok := exec.(engine.Updater); ok {
		if s.dur != nil {
			return s.dur.loggedUpdate(u, attr, oldV, newV)
		}
		return u.Update(attr, oldV, newV)
	}
	return fmt.Errorf("holistic: mode %v does not support updates", s.cfg.Mode)
}

// runner returns the store's conjunctive query runner, building it (and
// the executor) on first use.
func (s *Store) runner() (*query.Runner, error) {
	if _, err := s.executor(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.qr == nil {
		s.qr = query.New(s.table, s.exec, s.cfg.threads())
		s.qr.SetMetrics(s.met)
		s.qr.SetFlight(s.flight)
		s.qr.SetEcon(s.ec)
	}
	return s.qr, nil
}

// Query starts a multi-predicate query: chain Where clauses (ANDed
// range conjuncts) and finish with Count, Sum, Rows or Values.
//
//	n, err := store.Query().
//	        Where("shipdate", loDay, hiDay).
//	        Where("discount", 400, 601).
//	        Count()
//
// The planner estimates every conjunct's selectivity (exactly where the
// mode's index structures can answer, uniformly over the value domain
// otherwise), evaluates the most selective conjunct through the mode's
// native access path, and refines the resulting candidate rows against
// the remaining conjuncts by positional probes into the base data (late
// tuple reconstruction). The intermediate selection vector is chosen
// per query from those estimates: dense driving conjuncts flow through
// pooled word-packed bitmaps (branch-free intersection, popcount
// counts, zero steady-state allocations), sparse ones through position
// lists (DESIGN.md §5). Under ModeHolistic every conjunct also feeds
// the daemon's index space, so background refinement spreads across all
// touched attributes. Pending inserts/deletes/updates are merged so
// results stay correct; rows lacking a value in a referenced attribute
// (inserted into other attributes only, or deleted) never qualify.
func (s *Store) Query() *Query {
	return &Query{s: s}
}

// Query is a multi-predicate query under construction. Values are
// returned by the terminal methods; the builder itself never fails
// early (errors surface at execution).
type Query struct {
	s     *Store
	preds []query.Predicate
}

// Where adds the conjunct lo <= attr < hi. Repeating an attribute
// intersects the ranges.
func (q *Query) Where(attr string, lo, hi int64) *Query {
	q.preds = append(q.preds, query.Predicate{Attr: attr, Lo: lo, Hi: hi})
	return q
}

// Count answers "select count(*) where <conjunction>".
func (q *Query) Count() (int, error) {
	r, err := q.s.runner()
	if err != nil {
		return 0, err
	}
	return r.Count(q.preds)
}

// Sum answers "select sum(attr) where <conjunction>"; attr need not be
// among the predicates.
func (q *Query) Sum(attr string) (int64, error) {
	r, err := q.s.runner()
	if err != nil {
		return 0, err
	}
	return r.Sum(attr, q.preds)
}

// Rows materializes the qualifying base row ids in ascending order.
func (q *Query) Rows() ([]uint32, error) {
	r, err := q.s.runner()
	if err != nil {
		return nil, err
	}
	return r.Rows(q.preds)
}

// Values materializes the requested attributes of the qualifying
// tuples, one aligned slice per attribute, in ascending row-id order.
func (q *Query) Values(attrs ...string) ([][]int64, error) {
	r, err := q.s.runner()
	if err != nil {
		return nil, err
	}
	return r.Values(attrs, q.preds)
}

// Min answers "select min(attr) where <conjunction>"; ok is false when
// no tuple qualifies. A single conjunct on attr itself delegates to the
// mode's native MinMax pushdown; otherwise the extremum folds late over
// the surviving selection vector. attr need not be among the
// predicates.
func (q *Query) Min(attr string) (v int64, ok bool, err error) {
	r, err := q.s.runner()
	if err != nil {
		return 0, false, err
	}
	mn, _, ok, err := r.MinMax(attr, q.preds)
	return mn, ok, err
}

// Max answers "select max(attr) where <conjunction>"; ok is false when
// no tuple qualifies.
func (q *Query) Max(attr string) (v int64, ok bool, err error) {
	r, err := q.s.runner()
	if err != nil {
		return 0, false, err
	}
	_, mx, ok, err := r.MinMax(attr, q.preds)
	return mx, ok, err
}

// Agg is one aggregate of a grouped query; build them with Count, Sum,
// Min and Max and pass them to GroupedQuery.Aggregate.
type Agg struct {
	agg groupby.Agg
}

// Count is the count(*) aggregate of a grouped query.
func Count() Agg { return Agg{groupby.Count()} }

// Sum is the sum(attr) aggregate of a grouped query.
func Sum(attr string) Agg { return Agg{groupby.Sum(attr)} }

// Min is the min(attr) aggregate of a grouped query.
func Min(attr string) Agg { return Agg{groupby.Min(attr)} }

// Max is the max(attr) aggregate of a grouped query.
func Max(attr string) Agg { return Agg{groupby.Max(attr)} }

// GroupBy turns the query into a grouped aggregation over the given
// attributes; finish with Aggregate. Zero Where clauses group the whole
// relation.
//
//	res, err := store.Query().
//	        Where("shipdate", 0, cutoff).
//	        GroupBy("returnflag", "linestatus").
//	        Aggregate(holistic.Count(), holistic.Sum("quantity"))
//
// The selection pipeline is the conjunctive one (planned drive, bitmap
// intermediates, update-aware probes); the grouping itself runs fused
// multi-aggregate kernels under one of three physical strategies picked
// per query — dense bit-packed accumulators for small composite key
// domains, open-addressing hash accumulators otherwise, and sort-based
// grouping that walks the key's index clusters in order with no hash
// table at all when the group key is an indexed attribute. Under
// ModeHolistic the group-by attributes join the daemon's index space,
// so idle-time refinement converts hash grouping into the sort strategy
// over time. See DESIGN.md §6.
func (q *Query) GroupBy(attrs ...string) *GroupedQuery {
	return &GroupedQuery{q: q, keys: attrs}
}

// GroupedQuery is a grouped aggregation under construction.
type GroupedQuery struct {
	q    *Query
	keys []string
}

// GroupedResult is an ordered grouped-aggregation result table: group
// g's key is (Keys[0][g], ..., Keys[k-1][g]) — ascending
// lexicographically in the GroupBy attribute order — and its aggregate
// values are (Aggs[0][g], ...), aligned with the Aggregate list.
type GroupedResult struct {
	// KeyAttrs echoes the GroupBy attributes.
	KeyAttrs []string
	Keys     [][]int64
	Aggs     [][]int64
}

// Len returns the number of groups.
func (r *GroupedResult) Len() int {
	if len(r.Keys) == 0 {
		return 0
	}
	return len(r.Keys[0])
}

// Aggregate executes the grouped query with the given fused aggregates
// (computed in one pass over the qualifying rows) and returns the
// ordered result table.
func (g *GroupedQuery) Aggregate(aggs ...Agg) (*GroupedResult, error) {
	r, err := g.q.s.runner()
	if err != nil {
		return nil, err
	}
	specs := make([]groupby.Agg, len(aggs))
	for i, a := range aggs {
		specs[i] = a.agg
	}
	res, err := r.Grouped(g.keys, specs, g.q.preds)
	if err != nil {
		return nil, err
	}
	return &GroupedResult{
		KeyAttrs: append([]string(nil), g.keys...),
		Keys:     res.Keys,
		Aggs:     res.Aggs,
	}, nil
}

// Join turns the query into the left side of an equi-join with another
// query (typically over a different Store — the right side), matching
// rows with equal values in leftAttr and rightAttr. Each side's Where
// conjuncts pre-filter its relation through the usual selectivity-
// ordered pipeline; a side without predicates joins its whole relation.
// Finish with Count, Sum, Pairs, or GroupBy/Aggregate:
//
//	n, err := lineitem.Query().
//	        Where("l_receiptdate", lo, hi).
//	        Join(orders.Query(), "l_orderkey", "o_orderkey").
//	        Count()
//
// The physical strategy is picked per query (DESIGN.md §7): a
// radix-partitioned open-addressing hash join building over the
// smaller filtered side, or — when both join attributes have refined
// key-ordered index paths — an index-clustered merge join that
// intersects cluster value ranges and builds no hash table at all.
// Under ModeHolistic both join attributes feed their daemons' index
// spaces, so idle refinement converts hash joins into merge joins over
// time. Rows lacking a value in the join attribute (or in any
// referenced payload attribute) never match.
func (q *Query) Join(other *Query, leftAttr, rightAttr string) *JoinQuery {
	return &JoinQuery{left: q, right: other, leftAttr: leftAttr, rightAttr: rightAttr}
}

// JoinQuery is an equi-join under construction. Values are returned by
// the terminal methods; errors surface at execution.
type JoinQuery struct {
	left, right         *Query
	leftAttr, rightAttr string
}

// build resolves both sides' runners and assembles the executable join.
func (jq *JoinQuery) build() (*query.Join, error) {
	lr, err := jq.left.s.runner()
	if err != nil {
		return nil, err
	}
	rr, err := jq.right.s.runner()
	if err != nil {
		return nil, err
	}
	return lr.Join(rr, jq.leftAttr, jq.rightAttr, jq.left.preds, jq.right.preds), nil
}

// side resolves which relation an attribute belongs to: it must exist
// in exactly one of the two (qualify by splitting the query sides
// otherwise — the join builder has no rename machinery).
func (jq *JoinQuery) side(attr string) (join.Side, error) {
	inL := jq.left.s.table.Column(attr) != nil
	inR := jq.right.s.table.Column(attr) != nil
	switch {
	case inL && inR:
		return 0, fmt.Errorf("holistic: attribute %q exists on both join sides", attr)
	case inL:
		return join.Left, nil
	case inR:
		return join.Right, nil
	default:
		return 0, fmt.Errorf("holistic: unknown attribute %q", attr)
	}
}

// Count answers "select count(*)" over the matching pairs.
func (jq *JoinQuery) Count() (int64, error) {
	j, err := jq.build()
	if err != nil {
		return 0, err
	}
	return j.Count()
}

// Sum answers "select sum(attr)" over the matching pairs; attr may
// live on either side (a row matching k rows of the other relation
// contributes its value k times).
func (jq *JoinQuery) Sum(attr string) (int64, error) {
	side, err := jq.side(attr)
	if err != nil {
		return 0, err
	}
	j, err := jq.build()
	if err != nil {
		return 0, err
	}
	return j.Sum(side, attr)
}

// Pairs materializes the matching (left row id, right row id) pairs,
// sorted ascending by left then right row id.
func (jq *JoinQuery) Pairs() (left, right []uint32, err error) {
	j, err := jq.build()
	if err != nil {
		return nil, nil, err
	}
	left, right, err = j.Pairs()
	if err != nil {
		return nil, nil, err
	}
	sort.Sort(&pairSorter{left, right})
	return left, right, nil
}

type pairSorter struct{ l, r []uint32 }

func (p *pairSorter) Len() int { return len(p.l) }
func (p *pairSorter) Less(i, j int) bool {
	if p.l[i] != p.l[j] {
		return p.l[i] < p.l[j]
	}
	return p.r[i] < p.r[j]
}
func (p *pairSorter) Swap(i, j int) {
	p.l[i], p.l[j] = p.l[j], p.l[i]
	p.r[i], p.r[j] = p.r[j], p.r[i]
}

// GroupBy turns the join into a grouped aggregation over the matching
// pairs; the group-by attributes and the aggregates may reference
// either side's columns. Finish with Aggregate.
func (jq *JoinQuery) GroupBy(attrs ...string) *JoinGroupedQuery {
	return &JoinGroupedQuery{jq: jq, keys: attrs}
}

// JoinGroupedQuery is a grouped join aggregation under construction.
type JoinGroupedQuery struct {
	jq   *JoinQuery
	keys []string
}

// Aggregate executes the grouped join with the given fused aggregates
// and returns the ordered result table.
func (g *JoinGroupedQuery) Aggregate(aggs ...Agg) (*GroupedResult, error) {
	j, err := g.jq.build()
	if err != nil {
		return nil, err
	}
	keys := make([]query.GroupKey, len(g.keys))
	for i, k := range g.keys {
		side, err := g.jq.side(k)
		if err != nil {
			return nil, err
		}
		keys[i] = query.GroupKey{Side: side, Attr: k}
	}
	gaggs := make([]query.GroupAgg, len(aggs))
	for i, a := range aggs {
		ga := query.GroupAgg{Agg: a.agg}
		if a.agg.Kind != groupby.KindCount {
			side, err := g.jq.side(a.agg.Attr)
			if err != nil {
				return nil, err
			}
			ga.Side = side
		}
		gaggs[i] = ga
	}
	res, err := j.Grouped(keys, gaggs)
	if err != nil {
		return nil, err
	}
	return &GroupedResult{
		KeyAttrs: append([]string(nil), g.keys...),
		Keys:     res.Keys,
		Aggs:     res.Aggs,
	}, nil
}

// AddPotentialIndex registers attr in the potential configuration
// (ModeHolistic): the daemon may refine it before any query arrives —
// how the paper exploits idle time before a workload.
func (s *Store) AddPotentialIndex(attr string) error {
	exec, err := s.executor()
	if err != nil {
		return err
	}
	if h, ok := exec.(*engine.HolisticExecutor); ok {
		return h.AddPotential(attr)
	}
	return fmt.Errorf("holistic: mode %v has no potential configuration", s.cfg.Mode)
}

// Stats summarizes the store's self-tuning state.
type Stats struct {
	// Mode echoes the configured mode.
	Mode Mode
	// Pieces is the total number of index partitions across all adaptive
	// indices (0 for non-cracking modes).
	Pieces int
	// Refinements counts successful background refinement actions
	// (ModeHolistic only).
	Refinements int64
	// Activations counts daemon tuning cycles that ran workers
	// (ModeHolistic only).
	Activations int
}

// Stats returns a snapshot of the tuning telemetry. It is a pure read:
// on a store that has not executed any query yet (no executor built, no
// daemon started) it returns a zero snapshot instead of building the
// executor as a side effect.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	exec := s.exec
	s.mu.Unlock()
	st := Stats{Mode: s.cfg.Mode}
	switch e := exec.(type) {
	case *engine.HolisticExecutor:
		st.Pieces = e.TotalPieces()
		st.Refinements = e.Daemon.Refinements()
		st.Activations = int(e.Daemon.CycleTotals().Cycles)
	case *engine.AdaptiveExecutor:
		st.Pieces = e.TotalPieces()
	}
	return st
}

// Close stops background tuning; a durable store additionally writes a
// final snapshot of any unsnapshotted records and the clean-shutdown
// marker, so the next OpenStore skips WAL replay. Close is idempotent;
// queries issued after Close return ErrClosed.
//
// The store lock is released before the durability flush and the
// executor shutdown: the daemon's idle hook may be mid-checkpoint, and
// joining it while holding the lock every query path needs would stall
// the whole store behind that flush.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	exec := s.exec
	sink := s.traceSink
	s.traceSink = nil
	obs.UnregisterSource(s.obsName)
	obs.UnregisterFlight(s.obsName)
	obs.UnregisterTimeline(s.obsName)
	obs.UnregisterProm(s.obsName)
	s.mu.Unlock()
	s.stopWatchdog()
	s.stopTimeline()
	if s.dur != nil {
		s.dur.close()
	}
	if exec != nil {
		exec.Close()
	}
	if sink != nil {
		_ = sink.Close()
	}
}
