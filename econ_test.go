// Integration tests for the refinement-economics surface (DESIGN.md
// §12): the ledger and heatmaps filling in under a real holistic
// workload, the time-series ring accumulating windows, and the
// /metrics and /debug/holistic/timeline endpoints serving them.

package holistic

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"holistic/internal/obs"
)

// econWorkload drives a small conjunctive mix long enough for the
// daemon to invest refinement time.
func econWorkload(t *testing.T, s *Store, queries int) {
	t.Helper()
	const domain = 1 << 13
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < queries; i++ {
		lo := rng.Int63n(domain / 2)
		if _, err := s.Query().Where("x", lo, lo+domain/8).Where("y", 0, 3*domain/4).Count(); err != nil {
			t.Fatal(err)
		}
	}
}

func econStoreData(rows int) []int64 {
	const domain = 1 << 13
	vals := make([]int64, rows)
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		vals[i] = rng.Int63n(domain)
	}
	return vals
}

// TestEconomicsUnderHolisticWorkload: after a workload with an active
// daemon, the balance sheet reports invested time and both heatmaps
// saw the touched attributes.
func TestEconomicsUnderHolisticWorkload(t *testing.T) {
	s := NewStore(Config{
		Mode:           ModeHolistic,
		Threads:        2,
		TuningInterval: time.Millisecond,
		Seed:           1,
	})
	defer s.Close()
	for _, name := range []string{"x", "y"} {
		if err := s.AddIntColumn(name, econStoreData(60_000)); err != nil {
			t.Fatal(err)
		}
	}
	econWorkload(t, s, 50)
	deadline := time.Now().Add(5 * time.Second)
	var ec *Metrics
	for {
		m := s.Metrics()
		if m.Economics != nil && m.Economics.InvestedNS > 0 {
			ec = &m
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never invested refinement time")
		}
		econWorkload(t, s, 10)
		time.Sleep(10 * time.Millisecond)
	}
	snap := ec.Economics
	if len(snap.Indexes) == 0 {
		t.Fatal("economics has no per-index entries")
	}
	var drives int64
	for _, ie := range snap.Indexes {
		drives += ie.DriveQueries
	}
	if drives == 0 {
		t.Error("no drive-stage samples in the ledger")
	}
	if len(snap.Access) != 2 {
		t.Errorf("access heatmaps cover %d attrs, want 2", len(snap.Access))
	}
	for _, hm := range snap.Access {
		if hm.Total == 0 {
			t.Errorf("access heatmap %q is empty", hm.Attr)
		}
	}
	if len(snap.Refine) == 0 {
		t.Error("refine heatmap saw no pivots despite invested time")
	}
	for _, hm := range snap.Refine {
		if hm.Total == 0 {
			t.Errorf("refine heatmap %q is empty", hm.Attr)
		}
	}
}

// TestPromEndpointServesEconomics: the shared /metrics endpoint emits
// the per-index economics series and at least one histogram bucket
// group for a live store.
func TestPromEndpointServesEconomics(t *testing.T) {
	s := NewStore(Config{
		Mode:           ModeHolistic,
		Threads:        2,
		TuningInterval: time.Millisecond,
		Seed:           1,
	})
	defer s.Close()
	for _, name := range []string{"x", "y"} {
		if err := s.AddIntColumn(name, econStoreData(60_000)); err != nil {
			t.Fatal(err)
		}
	}
	econWorkload(t, s, 50)
	deadline := time.Now().Add(5 * time.Second)
	for s.ec.TotalInvestedNS() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never invested refinement time")
		}
		time.Sleep(10 * time.Millisecond)
	}

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want the 0.0.4 text format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"holistic_refine_invested_ns{",
		"holistic_refine_saved_ns{",
		"holistic_queries_total{",
		"holistic_query_latency_ns_bucket{",
		`le="+Inf"`,
		"holistic_access_heatmap_total{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Metadata must appear exactly once per family even with several
	// stores registered (the writer dedupes across collectors).
	if n := strings.Count(text, "# TYPE holistic_queries_total "); n != 1 {
		t.Errorf("TYPE holistic_queries_total appears %d times, want 1", n)
	}
}

// TestTimelineEndpointAccumulatesWindows: with a short sampling
// interval the time-series ring serves >= 2 deltified windows whose
// counter order matches the published names.
func TestTimelineEndpointAccumulatesWindows(t *testing.T) {
	s := NewStore(Config{
		Mode:             ModeAdaptive,
		Threads:          1,
		TimelineInterval: 20 * time.Millisecond,
		TimelineSamples:  16,
		Seed:             1,
	})
	defer s.Close()
	for _, name := range []string{"x", "y"} {
		if err := s.AddIntColumn(name, econStoreData(20_000)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		econWorkload(t, s, 5)
		if snap := s.ts.Snapshot(); len(snap.Windows) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeline never accumulated 2 windows")
		}
		time.Sleep(20 * time.Millisecond)
	}

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/holistic/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload []struct {
		Name     string               `json:"name"`
		Timeline obs.TimelineSnapshot `json:"timeline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, entry := range payload {
		if entry.Name != s.obsName {
			continue
		}
		found = true
		tl := entry.Timeline
		if len(tl.Windows) < 2 {
			t.Errorf("timeline has %d windows, want >= 2", len(tl.Windows))
		}
		if len(tl.Counters) != len(timelineCounters) {
			t.Errorf("timeline publishes %d counters, want %d", len(tl.Counters), len(timelineCounters))
		}
		var queries int64
		for _, w := range tl.Windows {
			if len(w.Deltas) != len(tl.Counters) {
				t.Fatalf("window has %d deltas, want %d", len(w.Deltas), len(tl.Counters))
			}
			queries += w.Deltas[0]
		}
		if queries == 0 {
			t.Error("no query deltas across the retained windows")
		}
	}
	if !found {
		t.Fatalf("store %s missing from timeline payload", s.obsName)
	}
}

// TestFlightDumpKnobsSurfaced: the configured dump cooldown and keep
// count appear in the metrics flight block.
func TestFlightDumpKnobsSurfaced(t *testing.T) {
	s := NewStore(Config{
		Mode:               ModeAdaptive,
		FlightDumpCooldown: 7 * time.Second,
		FlightDumpKeep:     3,
		WatchdogInterval:   -1,
		TimelineInterval:   -1,
	})
	defer s.Close()
	m := s.Metrics()
	if m.Flight == nil {
		t.Fatal("flight status missing")
	}
	if got := m.Flight.Watchdog.DumpCooldownMS; got != 7000 {
		t.Errorf("dump cooldown %dms, want 7000", got)
	}
	if got := m.Flight.DumpKeep; got != 3 {
		t.Errorf("dump keep %d, want 3", got)
	}
}
