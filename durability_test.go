package holistic

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"holistic/internal/durable"
	"holistic/internal/obs/flight"
)

// durCfg is the crash-matrix configuration: strict per-record fsync so
// acknowledged == durable exactly, and no background snapshots so the
// script controls every checkpoint.
func durCfg(mode Mode) Config {
	return Config{
		Mode:             mode,
		Threads:          2,
		Seed:             42,
		WALSync:          WALSyncAlways,
		SnapshotInterval: -1,
		TuningInterval:   time.Millisecond,
	}
}

// scriptOp is one step of the crash-matrix workload.
type scriptOp struct {
	kind byte // 'i' insert, 'd' delete, 'u' update, 'c' checkpoint, 'q' query
	attr string
	a, b int64
}

func matrixBases() (a, b []int64) {
	const n = 48
	a = make([]int64, n)
	b = make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64((i * 37) % 97)
		b[i] = int64((i * 53) % 89)
	}
	return a, b
}

// matrixScript is the scripted workload: queries crack the adaptive
// state, checkpoints bake it into snapshot generations, and the writes
// exercise every WAL record kind across both sides of a checkpoint.
func matrixScript(mode Mode) []scriptOp {
	baseA, baseB := matrixBases()
	ops := []scriptOp{
		{kind: 'q', attr: "a", a: 10, b: 60},
		{kind: 'q', attr: "b", a: 5, b: 40},
		{kind: 'c'},
	}
	if mode == ModeAdaptive || mode == ModeStochastic || mode == ModeHolistic {
		ops = append(ops,
			scriptOp{kind: 'i', attr: "a", a: 1001},
			scriptOp{kind: 'i', attr: "b", a: 2001},
			scriptOp{kind: 'd', attr: "a", a: baseA[5]},
			scriptOp{kind: 'u', attr: "b", a: baseB[7], b: 501},
			scriptOp{kind: 'q', attr: "a", a: 0, b: 97},
			scriptOp{kind: 'c'},
			scriptOp{kind: 'i', attr: "a", a: 1002},
			scriptOp{kind: 'd', attr: "b", a: baseB[9]},
			scriptOp{kind: 'u', attr: "a", a: 1001, b: 1003},
			scriptOp{kind: 'q', attr: "b", a: 0, b: 89},
		)
	} else {
		ops = append(ops,
			scriptOp{kind: 'q', attr: "a", a: 0, b: 97},
			scriptOp{kind: 'c'},
			scriptOp{kind: 'q', attr: "b", a: 0, b: 89},
		)
	}
	return ops
}

// runScript applies ops until the first error (after an injected crash
// every filesystem operation fails, so the first failure ends the run)
// and returns the acknowledged write operations.
func runScript(s *Store, ops []scriptOp) (acked []scriptOp) {
	for _, op := range ops {
		var err error
		switch op.kind {
		case 'q':
			_, err = s.CountRange(op.attr, op.a, op.b)
		case 'c':
			err = s.Checkpoint()
		case 'i':
			err = s.Insert(op.attr, op.a)
		case 'd':
			err = s.Delete(op.attr, op.a)
		case 'u':
			err = s.Update(op.attr, op.a, op.b)
		}
		if err != nil {
			return acked
		}
		if op.kind == 'i' || op.kind == 'd' || op.kind == 'u' {
			acked = append(acked, op)
		}
	}
	return acked
}

// oracleStore builds the never-crashed reference: an in-memory store
// with the same configuration holding the setup columns plus exactly
// the acknowledged writes.
func oracleStore(t *testing.T, mode Mode, acked []scriptOp) *Store {
	t.Helper()
	o := NewStore(durCfg(mode))
	baseA, baseB := matrixBases()
	if err := o.AddIntColumn("a", baseA); err != nil {
		t.Fatal(err)
	}
	if err := o.AddIntColumn("b", baseB); err != nil {
		t.Fatal(err)
	}
	for _, op := range acked {
		var err error
		switch op.kind {
		case 'i':
			err = o.Insert(op.attr, op.a)
		case 'd':
			err = o.Delete(op.attr, op.a)
		case 'u':
			err = o.Update(op.attr, op.a, op.b)
		}
		if err != nil {
			t.Fatalf("oracle %c %s: %v", op.kind, op.attr, err)
		}
	}
	return o
}

// compareStores asserts byte-identical results between the recovered
// store and the oracle across every query shape.
func compareStores(t *testing.T, tag string, got, want, ref *Store) {
	t.Helper()
	ranges := [][2]int64{{0, 1 << 62}, {10, 60}, {5, 40}, {80, 2100}}
	for _, attr := range []string{"a", "b"} {
		for _, r := range ranges {
			gn, gerr := got.CountRange(attr, r[0], r[1])
			wn, werr := want.CountRange(attr, r[0], r[1])
			if gn != wn || (gerr == nil) != (werr == nil) {
				t.Fatalf("%s: Count(%s,%d,%d) = %d,%v want %d,%v", tag, attr, r[0], r[1], gn, gerr, wn, werr)
			}
			gs, _ := got.SumRange(attr, r[0], r[1])
			ws, _ := want.SumRange(attr, r[0], r[1])
			if gs != ws {
				t.Fatalf("%s: Sum(%s,%d,%d) = %d want %d", tag, attr, r[0], r[1], gs, ws)
			}
			gmn, gmx, gok, _ := got.MinMaxRange(attr, r[0], r[1])
			wmn, wmx, wok, _ := want.MinMaxRange(attr, r[0], r[1])
			if gmn != wmn || gmx != wmx || gok != wok {
				t.Fatalf("%s: MinMax(%s,%d,%d) = %d,%d,%v want %d,%d,%v", tag, attr, r[0], r[1], gmn, gmx, gok, wmn, wmx, wok)
			}
			grows, gerr := got.SelectRows(attr, r[0], r[1])
			wrows, werr := want.SelectRows(attr, r[0], r[1])
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("%s: SelectRows(%s) err %v vs %v", tag, attr, gerr, werr)
			}
			sort.Slice(grows, func(i, j int) bool { return grows[i] < grows[j] })
			sort.Slice(wrows, func(i, j int) bool { return wrows[i] < wrows[j] })
			if fmt.Sprint(grows) != fmt.Sprint(wrows) {
				t.Fatalf("%s: SelectRows(%s,%d,%d) = %v want %v", tag, attr, r[0], r[1], grows, wrows)
			}
		}
	}
	gn, gerr := got.Query().Where("a", 10, 70).Where("b", 0, 50).Count()
	wn, werr := want.Query().Where("a", 10, 70).Where("b", 0, 50).Count()
	if gn != wn || (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: conjunctive Count = %d,%v want %d,%v", tag, gn, gerr, wn, werr)
	}
	gg, gerr := got.Query().Where("a", 0, 1<<62).GroupBy("b").Aggregate(Count(), Sum("a"))
	wg, werr := want.Query().Where("a", 0, 1<<62).GroupBy("b").Aggregate(Count(), Sum("a"))
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: GroupBy err %v vs %v", tag, gerr, werr)
	}
	if gerr == nil && fmt.Sprint(gg.Keys)+fmt.Sprint(gg.Aggs) != fmt.Sprint(wg.Keys)+fmt.Sprint(wg.Aggs) {
		t.Fatalf("%s: GroupBy = %v/%v want %v/%v", tag, gg.Keys, gg.Aggs, wg.Keys, wg.Aggs)
	}
	gj, gerr := got.Query().Where("a", 0, 1<<62).Join(ref.Query(), "a", "k").Count()
	wj, werr := want.Query().Where("a", 0, 1<<62).Join(ref.Query(), "a", "k").Count()
	if gj != wj || (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: Join Count = %d,%v want %d,%v", tag, gj, gerr, wj, werr)
	}
}

// refJoinStore is the fixed right-hand relation of the matrix's join
// probe.
func refJoinStore(t *testing.T) *Store {
	t.Helper()
	ref := NewStore(Config{Mode: ModeScan, Threads: 1})
	k := make([]int64, 97)
	for i := range k {
		k[i] = int64(i)
	}
	if err := ref.AddIntColumn("k", k); err != nil {
		t.Fatal(err)
	}
	return ref
}

// validateFlightDumps asserts every committed flight-*.bin in fs is a
// CRC-valid frame that decodes to well-formed events: a dump committed
// at one checkpoint must survive any later kill intact (tmp+rename),
// and the newest dump must carry the audit trail of the checkpoint
// that wrote it. Returns the number of committed dumps.
func validateFlightDumps(t *testing.T, tag string, fs durable.FS) int {
	t.Helper()
	dumps, err := durable.ListFlightDumps(fs)
	if err != nil {
		t.Fatalf("%s: list flight dumps: %v", tag, err)
	}
	for i, name := range dumps {
		data, err := fs.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: read %s: %v", tag, name, err)
		}
		d, err := flight.Decode(data)
		if err != nil {
			t.Fatalf("%s: %s does not decode: %v", tag, name, err)
		}
		if len(d.Events) == 0 {
			t.Fatalf("%s: %s decoded to zero events", tag, name)
		}
		lastSeq := uint64(0)
		checkpoints := 0
		for _, e := range d.Events {
			if e.Kind < flight.EvQuery || e.Kind > flight.EvAnomaly {
				t.Fatalf("%s: %s holds event of unknown kind %d", tag, name, e.Kind)
			}
			if e.Seq <= lastSeq {
				t.Fatalf("%s: %s events out of order: seq %d after %d", tag, name, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			if e.Kind == flight.EvCheckpoint {
				checkpoints++
			}
		}
		// Every dump in this matrix is written by a checkpoint, so each
		// must record at least the checkpoints up to its own.
		if checkpoints < i+1 {
			t.Fatalf("%s: %s records %d checkpoint events, want >= %d", tag, name, checkpoints, i+1)
		}
	}
	return len(dumps)
}

// TestCrashMatrix kills the store at every mutating filesystem
// operation of a scripted workload — alternating clean and torn tears —
// and asserts the recovered store answers every query shape
// byte-identically to a never-crashed oracle holding exactly the
// acknowledged writes. All seven modes.
func TestCrashMatrix(t *testing.T) {
	modes := []Mode{ModeScan, ModeOffline, ModeOnline, ModeAdaptive, ModeStochastic, ModeCCGI, ModeHolistic}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			ref := refJoinStore(t)
			defer ref.Close()
			baseA, baseB := matrixBases()
			script := matrixScript(mode)

			// Counting run: how many mutating fs operations does the
			// whole lifecycle (open, script, close) perform?
			fs := durable.NewFaultFS()
			s, err := openStoreFS(fs, durCfg(mode))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AddIntColumn("a", baseA); err != nil {
				t.Fatal(err)
			}
			if err := s.AddIntColumn("b", baseB); err != nil {
				t.Fatal(err)
			}
			runScript(s, script)
			s.Close()
			total := fs.Ops()
			if total < 10 {
				t.Fatalf("suspiciously few fs ops in counting run: %d", total)
			}

			step := 1
			if testing.Short() {
				step = 7
			}
			for k := 1; k <= total; k += step {
				torn := k%2 == 1
				tag := fmt.Sprintf("%s/kill=%d/torn=%v", mode, k, torn)
				fs := durable.NewFaultFS()
				fs.KillAt(k, torn)
				var acked []scriptOp
				s, err := openStoreFS(fs, durCfg(mode))
				if err == nil {
					if err := s.AddIntColumn("a", baseA); err != nil {
						t.Fatalf("%s: add column: %v", tag, err)
					}
					if err := s.AddIntColumn("b", baseB); err != nil {
						t.Fatalf("%s: add column: %v", tag, err)
					}
					acked = runScript(s, script)
					s.Close()
				}
				fs.Crash()

				// Any flight dump committed before the kill must decode
				// CRC-clean from the survivor filesystem.
				nd := validateFlightDumps(t, tag, fs)

				r, err := openStoreFS(fs, durCfg(mode))
				if err != nil {
					t.Fatalf("%s: reopen: %v", tag, err)
				}
				if got := len(r.PriorFlightDumps()); got != nd {
					t.Fatalf("%s: reopened store reports %d prior flight dumps, want %d", tag, got, nd)
				}
				if len(r.Columns()) == 0 {
					// The crash predates the initial snapshot: nothing was
					// ever acknowledged as durable.
					if len(acked) != 0 {
						t.Fatalf("%s: empty recovered store but %d acked writes", tag, len(acked))
					}
					r.Close()
					continue
				}
				oracle := oracleStore(t, mode, acked)
				compareStores(t, tag, r, oracle, ref)
				oracle.Close()
				r.Close()
			}
		})
	}
}

// TestCleanCloseSkipsReplay asserts the clean-shutdown marker works: a
// closed store reopens with zero replayed records and the clean flag
// set, and still holds every write.
func TestCleanCloseSkipsReplay(t *testing.T) {
	fs := durable.NewFaultFS()
	cfg := durCfg(ModeAdaptive)
	s, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIntColumn("a", []int64{5, 3, 9, 1, 7}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{20, 21, 22} {
		if err := s.Insert("a", v); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	r, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m := r.Metrics()
	if m.Recovery == nil {
		t.Fatal("durable store reports no recovery metrics")
	}
	if !m.Recovery.CleanStart {
		t.Errorf("CleanStart = false after clean close")
	}
	if m.Recovery.ReplayedRecords != 0 {
		t.Errorf("ReplayedRecords = %d after clean close, want 0", m.Recovery.ReplayedRecords)
	}
	n, err := r.CountRange("a", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("CountRange after clean reopen = %d, want 8", n)
	}
}

// TestUncleanReopenReplays asserts the WAL tail actually drives
// recovery when the clean marker is missing (simulated kill -9).
func TestUncleanReopenReplays(t *testing.T) {
	fs := durable.NewFaultFS()
	cfg := durCfg(ModeAdaptive)
	s, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIntColumn("a", []int64{5, 3, 9, 1, 7}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{20, 21, 22} {
		if err := s.Insert("a", v); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the process dies with the WAL tail unsnapshotted.
	fs.Crash()
	r, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m := r.Metrics()
	if m.Recovery.ReplayedRecords != 3 {
		t.Errorf("ReplayedRecords = %d, want 3", m.Recovery.ReplayedRecords)
	}
	if m.Recovery.CleanStart {
		t.Error("CleanStart = true after simulated kill")
	}
	n, err := r.CountRange("a", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("CountRange after unclean reopen = %d, want 8", n)
	}
}

// TestAdaptiveStateRestored asserts that reopening a cracked store
// reinstates the cracker piece boundaries without re-running the
// workload, while DataOnlyRecovery rebuilds from scratch.
func TestAdaptiveStateRestored(t *testing.T) {
	fs := durable.NewFaultFS()
	cfg := durCfg(ModeAdaptive)
	s, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 100_000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i * 2654435761) % 1_000_003)
	}
	if err := s.AddIntColumn("a", vals); err != nil {
		t.Fatal(err)
	}
	var want int
	for q := 0; q < 100; q++ {
		lo := int64((q * 9973) % 900_000)
		c, err := s.CountRange("a", lo, lo+50_000)
		if err != nil {
			t.Fatal(err)
		}
		if lo == 0 {
			want = c
		}
	}
	pieces := s.Stats().Pieces
	if pieces < 50 {
		t.Fatalf("workload cracked only %d pieces", pieces)
	}
	s.Close()

	r, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Pieces; got < pieces {
		t.Errorf("restored Pieces = %d before any query, want >= %d", got, pieces)
	}
	if m := r.Metrics(); m.Recovery.RestoredIndexes != 1 {
		t.Errorf("RestoredIndexes = %d, want 1", m.Recovery.RestoredIndexes)
	}
	c, err := r.CountRange("a", 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if c != want {
		t.Errorf("restored first query = %d, want %d", c, want)
	}
	r.Close()

	dataOnly := cfg
	dataOnly.DataOnlyRecovery = true
	r2, err := openStoreFS(fs, dataOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Stats().Pieces; got != 0 {
		t.Errorf("DataOnlyRecovery Pieces = %d before any query, want 0", got)
	}
	c2, err := r2.CountRange("a", 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != want {
		t.Errorf("data-only first query = %d, want %d", c2, want)
	}
}

// TestGroupCommitConcurrentWrites drives the group-commit leader
// election under -race and asserts every acknowledged write survives a
// clean reopen.
func TestGroupCommitConcurrentWrites(t *testing.T) {
	fs := durable.NewFaultFS()
	cfg := durCfg(ModeAdaptive)
	cfg.WALSync = WALSyncGroup
	s, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIntColumn("a", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if err := s.Insert("a", int64(1000+w*each+i)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	r, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n, err := r.CountRange("a", 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3+writers*each {
		t.Errorf("CountRange after reopen = %d, want %d", n, 3+writers*each)
	}
}

// TestHolisticDaemonStateRestored asserts the daemon's convergence
// accounting survives a restart.
func TestHolisticDaemonStateRestored(t *testing.T) {
	fs := durable.NewFaultFS()
	cfg := durCfg(ModeHolistic)
	s, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 50_000)
	for i := range vals {
		vals[i] = int64((i * 31) % 40_000)
	}
	if err := s.AddIntColumn("a", vals); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CountRange("a", 100, 20_000); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	var cycles int64
	for {
		if st := s.Stats(); st.Activations > 0 && st.Refinements > 0 {
			cycles = int64(st.Activations)
			break
		}
		if time.Now().After(deadline) {
			t.Skip("daemon ran no cycle in 2s; skipping restore assertion")
		}
		time.Sleep(2 * time.Millisecond)
	}
	refinements := s.Stats().Refinements
	s.Close()

	r, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if int64(st.Activations) < cycles {
		t.Errorf("restored Activations = %d, want >= %d", st.Activations, cycles)
	}
	if st.Refinements < refinements {
		t.Errorf("restored Refinements = %d, want >= %d", st.Refinements, refinements)
	}
}
