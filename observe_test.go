package holistic_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"holistic"
)

// obsStore builds a holistic-mode store over three correlated columns.
func obsStore(t testing.TB, rows int) *holistic.Store {
	t.Helper()
	s := holistic.NewStore(holistic.Config{
		Mode:           holistic.ModeHolistic,
		Threads:        2,
		TuningInterval: time.Millisecond,
		Seed:           3,
	})
	rng := rand.New(rand.NewSource(11))
	for _, name := range []string{"a", "b", "c"} {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = rng.Int63n(1 << 14)
		}
		if err := s.AddIntColumn(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestStoreMetrics: the Metrics snapshot reflects an executed workload
// end to end — query counts, latency summaries, representation and
// strategy counters, access-path counters, and daemon convergence.
func TestStoreMetrics(t *testing.T) {
	s := obsStore(t, 40_000)
	defer s.Close()
	for i := 0; i < 30; i++ {
		lo := int64(i * 100)
		if _, err := s.Query().Where("a", lo, lo+4000).Where("b", 0, 1<<13).Count(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Query().Where("a", 0, 1<<13).GroupBy("b").Aggregate(holistic.Count()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the daemon run some cycles

	m := s.Metrics()
	if m.Mode != "holistic" {
		t.Fatalf("mode = %q", m.Mode)
	}
	if m.Rows != 40_000 {
		t.Fatalf("rows = %d", m.Rows)
	}
	if m.Query.Queries < 31 {
		t.Fatalf("queries = %d, want >= 31", m.Query.Queries)
	}
	lat, ok := m.Query.Latency["count"]
	if !ok || lat.Count < 30 {
		t.Fatalf("count latency summary missing or short: %+v", m.Query.Latency)
	}
	if lat.P50US <= 0 || lat.P99US < lat.P50US {
		t.Fatalf("implausible percentiles: %+v", lat)
	}
	if len(m.Query.Representations) == 0 {
		t.Fatal("no representation counters")
	}
	if m.Exec == nil || m.Exec.Selects == 0 {
		t.Fatalf("exec metrics missing: %+v", m.Exec)
	}
	if m.Daemon == nil {
		t.Fatal("holistic store missing daemon convergence")
	}
	if m.Daemon.Ratio < 0 || m.Daemon.Ratio > 1 {
		t.Fatalf("convergence ratio %f out of [0,1]", m.Daemon.Ratio)
	}
	if m.Daemon.Totals.Cycles == 0 {
		t.Fatal("daemon reported no cycles")
	}
	if len(m.Daemon.Indexes) == 0 {
		t.Fatal("daemon reported no indexes")
	}

	// The snapshot must marshal — it backs the HTTP endpoint.
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"convergence_ratio"`, `"latency"`, `"p99_us"`, `"cycle_totals"`} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Errorf("marshaled metrics missing %s", key)
		}
	}
}

// TestQueryExplain: the public Explain reports estimated versus actual
// selectivity per conjunct and the physical choices for select,
// group-by, and join.
func TestQueryExplain(t *testing.T) {
	s := obsStore(t, 20_000)
	defer s.Close()

	ex, err := s.Query().Where("a", 0, 1<<12).Where("b", 1<<10, 1<<14).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Conjuncts) != 2 {
		t.Fatalf("got %d conjuncts", len(ex.Conjuncts))
	}
	for _, c := range ex.Conjuncts {
		if c.EstRows <= 0 || c.ActualRows < 0 {
			t.Errorf("conjunct %s: est %.0f actual %d", c.Attr, c.EstRows, c.ActualRows)
		}
	}
	if ex.Representation == "" || ex.RepresentationReason == "" {
		t.Fatalf("missing representation: %+v", ex)
	}
	if !strings.Contains(ex.String(), "actual ") {
		t.Errorf("rendered explain missing actuals:\n%s", ex)
	}

	gx, err := s.Query().Where("a", 0, 1<<13).GroupBy("b").Explain(holistic.Count(), holistic.Sum("c"))
	if err != nil {
		t.Fatal(err)
	}
	if gx.Strategy == "" || gx.StrategyReason == "" {
		t.Fatalf("grouped explain missing strategy: %+v", gx)
	}

	s2 := obsStore(t, 10_000)
	defer s2.Close()
	jx, err := s.Query().Where("a", 0, 1<<13).
		Join(s2.Query().Where("b", 0, 1<<13), "c", "c").Explain()
	if err != nil {
		t.Fatal(err)
	}
	if jx.Strategy != "hash" && jx.Strategy != "merge" {
		t.Fatalf("join strategy %q", jx.Strategy)
	}
	sides := map[string]bool{}
	for _, c := range jx.Conjuncts {
		sides[c.Side] = true
	}
	if !sides["left"] || !sides["right"] {
		t.Fatalf("join conjuncts missing a side: %+v", jx.Conjuncts)
	}
}

// TestSetTraceJSONL: every query emits one valid JSONL trace while the
// sink is attached, and detaching stops the stream.
func TestSetTraceJSONL(t *testing.T) {
	s := obsStore(t, 10_000)
	defer s.Close()
	var buf bytes.Buffer
	if err := s.SetTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	const q = 5
	for i := 0; i < q; i++ {
		if _, err := s.Query().Where("a", 0, 1<<12).Where("b", 0, 1<<13).Count(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetTraceJSONL(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query().Where("a", 0, 1<<12).Where("b", 0, 1<<13).Count(); err != nil {
		t.Fatal(err)
	}

	lines := 0
	scan := bufio.NewScanner(&buf)
	for scan.Scan() {
		lines++
		var tr struct {
			Kind      string `json:"kind"`
			Mode      string `json:"mode"`
			Conjuncts []struct {
				Attr string `json:"attr"`
			} `json:"conjuncts"`
			TotalNS int64 `json:"total_ns"`
		}
		if err := json.Unmarshal(scan.Bytes(), &tr); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if tr.Kind != "count" || tr.Mode == "" || len(tr.Conjuncts) != 2 || tr.TotalNS <= 0 {
			t.Fatalf("line %d malformed: %s", lines, scan.Text())
		}
	}
	if lines != q {
		t.Fatalf("got %d trace lines, want %d", lines, q)
	}
}
