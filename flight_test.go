package holistic

import (
	"bytes"
	"testing"
	"time"

	"holistic/internal/durable"
	"holistic/internal/obs/flight"
)

// kindCounts tallies decoded flight events by kind.
func kindCounts(events []flight.Event) map[flight.Kind]int {
	m := make(map[flight.Kind]int)
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

// TestFlightDumpRoundtrip drives queries through an in-memory store,
// dumps the ring with Store.FlightDump and asserts the dump decodes to
// the query, representation and strategy audit events the workload
// must have produced.
func TestFlightDumpRoundtrip(t *testing.T) {
	s := NewStore(Config{Mode: ModeAdaptive, Threads: 2, Seed: 1})
	defer s.Close()
	n := 4096
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64((i * 37) % 1000)
		b[i] = int64((i * 53) % 500)
	}
	if err := s.AddIntColumn("a", a); err != nil {
		t.Fatal(err)
	}
	if err := s.AddIntColumn("b", b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Query().Where("a", int64(i*10), 900).Where("b", 0, 400).Count(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Query().Where("a", 0, 1<<62).GroupBy("b").Aggregate(Count()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	wrote, err := s.FlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != buf.Len() {
		t.Fatalf("FlightDump reported %d bytes, wrote %d", wrote, buf.Len())
	}
	d, err := flight.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("dump does not decode: %v", err)
	}
	if d.Trigger != flight.TriggerManual {
		t.Errorf("dump trigger = %v, want manual", d.Trigger)
	}
	ks := kindCounts(d.Events)
	if ks[flight.EvQuery] < 9 {
		t.Errorf("dump holds %d query events, want >= 9", ks[flight.EvQuery])
	}
	if ks[flight.EvRep] < 8 {
		t.Errorf("dump holds %d representation events, want >= 8", ks[flight.EvRep])
	}
	if ks[flight.EvStrategy] < 1 {
		t.Errorf("dump holds %d strategy events, want >= 1", ks[flight.EvStrategy])
	}

	m := s.Metrics()
	if m.Flight == nil {
		t.Fatal("Metrics().Flight missing on a flight-enabled store")
	}
	if m.Flight.EventsRecorded == 0 || m.Flight.RingCapacity == 0 {
		t.Errorf("flight status empty: %+v", m.Flight)
	}
	if m.Flight.Watchdog.DumpsWritten < 1 {
		t.Errorf("watchdog counted %d dumps, want >= 1", m.Flight.Watchdog.DumpsWritten)
	}
}

// TestFlightDisabled asserts FlightEvents < 0 turns the subsystem off:
// queries run, FlightDump refuses, and Metrics carries no flight block.
func TestFlightDisabled(t *testing.T) {
	s := NewStore(Config{Mode: ModeScan, Threads: 1, FlightEvents: -1})
	defer s.Close()
	if err := s.AddIntColumn("a", []int64{3, 1, 4, 1, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CountRange("a", 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FlightDump(&bytes.Buffer{}); err == nil {
		t.Fatal("FlightDump succeeded with flight recording disabled")
	}
	if s.Metrics().Flight != nil {
		t.Fatal("Metrics().Flight present with flight recording disabled")
	}
}

// TestWatchdogAnomalyFlightDump injects a latency anomaly (an absolute
// p99 SLO of one nanosecond that every query breaches) and asserts the
// watchdog dumps the ring to the durable directory, with the dump
// decoding to the full audit trail: queries, representation and
// strategy decisions, daemon refinement steps, and the anomaly event.
func TestWatchdogAnomalyFlightDump(t *testing.T) {
	fs := durable.NewFaultFS()
	cfg := durCfg(ModeHolistic)
	cfg.SLOP99 = time.Nanosecond
	cfg.WatchdogInterval = 25 * time.Millisecond
	s, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 50_000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64((i * 31) % 40_000)
		b[i] = int64((i * 17) % 100)
	}
	if err := s.AddIntColumn("a", a); err != nil {
		t.Fatal(err)
	}
	if err := s.AddIntColumn("b", b); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CountRange("a", 100, 20_000); err != nil {
		t.Fatal(err)
	}

	// Let the daemon refine so the ring holds refinement and cycle
	// events before the anomaly fires (the dump must audit them too).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := s.Stats(); st.Activations > 0 && st.Refinements > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Skip("daemon ran no refinement in 2s; skipping anomaly dump assertion")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A grouped query records a strategy decision.
	if _, err := s.Query().Where("a", 0, 1<<62).GroupBy("b").Aggregate(Count()); err != nil {
		t.Fatal(err)
	}

	// Checkpoints riding the column additions above already dumped;
	// anything beyond this count is the watchdog's anomaly dump.
	base, err := durable.ListFlightDumps(fs)
	if err != nil {
		t.Fatal(err)
	}

	// Storm enough queries that a watchdog window passes MinSamples;
	// every one breaches the 1ns SLO, so the first judged window dumps.
	var dumps []string
	deadline = time.Now().Add(5 * time.Second)
	for len(dumps) <= len(base) && time.Now().Before(deadline) {
		for i := 0; i < 40; i++ {
			if _, err := s.CountRange("a", int64(i*7), int64(i*7+5000)); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(10 * time.Millisecond)
		if dumps, err = durable.ListFlightDumps(fs); err != nil {
			t.Fatal(err)
		}
	}
	if len(dumps) <= len(base) {
		t.Fatal("watchdog wrote no flight dump under an injected p99 anomaly")
	}

	data, err := fs.ReadFile(dumps[len(dumps)-1])
	if err != nil {
		t.Fatal(err)
	}
	d, err := flight.Decode(data)
	if err != nil {
		t.Fatalf("anomaly dump does not decode: %v", err)
	}
	if d.Trigger != flight.TriggerP99 {
		t.Errorf("dump trigger = %v, want p99_slo", d.Trigger)
	}
	ks := kindCounts(d.Events)
	for _, want := range []flight.Kind{
		flight.EvQuery, flight.EvRep, flight.EvStrategy,
		flight.EvRefine, flight.EvCycle, flight.EvAnomaly,
	} {
		if ks[want] == 0 {
			t.Errorf("anomaly dump holds no %v events: %v", want, ks)
		}
	}

	m := s.Metrics()
	if m.Flight == nil || m.Flight.Watchdog.Anomalies < 1 {
		t.Fatalf("watchdog state does not report the anomaly: %+v", m.Flight)
	}
	if m.Flight.Watchdog.DumpsWritten < 1 {
		t.Errorf("watchdog counted %d dumps, want >= 1", m.Flight.Watchdog.DumpsWritten)
	}
	if m.Recovery == nil || m.Recovery.FlightDumps < 1 {
		t.Errorf("recovery metrics do not count the flight dump: %+v", m.Recovery)
	}
	if m.Recovery != nil && m.Recovery.LastFlightDump != dumps[len(dumps)-1] {
		t.Errorf("LastFlightDump = %q, want %q", m.Recovery.LastFlightDump, dumps[len(dumps)-1])
	}
}

// TestTornTailFlightDump kills a store mid-WAL-append and asserts boot
// recovery records the torn tail as an anomaly and writes a dump.
func TestTornTailFlightDump(t *testing.T) {
	fs := durable.NewFaultFS()
	cfg := durCfg(ModeAdaptive)
	s, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIntColumn("a", []int64{5, 3, 9, 1, 7}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{20, 21, 22} {
		if err := s.Insert("a", v); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the next WAL append mid-write, torn flavor: half of the new
	// record persists, leaving a torn tail for recovery to find.
	fs.KillAt(1, true)
	_ = s.Insert("a", 23) // dies at the injected kill point
	fs.Crash()

	r, err := openStoreFS(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m := r.Metrics()
	if m.Recovery == nil || !m.Recovery.TornWALTail {
		t.Skipf("tear did not produce a torn tail (recovery: %+v)", m.Recovery)
	}
	dumps, err := durable.ListFlightDumps(fs)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint dumps ride along (column snapshots); find the one the
	// torn tail triggered.
	var torn *flight.Dump
	for _, name := range dumps {
		data, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := flight.Decode(data)
		if err != nil {
			t.Fatalf("%s does not decode: %v", name, err)
		}
		if d.Trigger == flight.TriggerTornTail {
			torn = d
		}
	}
	if torn == nil {
		t.Fatal("no torn-tail flight dump after recovery")
	}
	ks := kindCounts(torn.Events)
	if ks[flight.EvRecovery] == 0 {
		t.Errorf("torn-tail dump holds no recovery event: %v", ks)
	}
	if ks[flight.EvAnomaly] == 0 {
		t.Errorf("torn-tail dump holds no anomaly event: %v", ks)
	}
	if m.Flight == nil || m.Flight.Watchdog.LastTrigger != "torn_wal_tail" {
		t.Errorf("watchdog last trigger = %+v, want torn_wal_tail", m.Flight)
	}
}
